package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteLog writes events as a JSONL event log — the same format Publish
// spills.
func WriteLog(w io.Writer, evs []Event) error {
	enc := json.NewEncoder(w)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return fmt.Errorf("obs: write event log: %w", err)
		}
	}
	return nil
}

// ReadLog parses a JSONL event log, tolerating blank lines.
func ReadLog(rd io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: event log line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read event log: %w", err)
	}
	return out, nil
}

// MergeLogs interleaves per-RDN event logs into one causal timeline,
// stably ordered by (At, RDN, Seq). Each instance's events keep their
// publish order, and ties across instances break deterministically, so the
// merged log is byte-identical run to run for a deterministic drill.
func MergeLogs(logs ...[]Event) []Event {
	var n int
	for _, l := range logs {
		n += len(l)
	}
	out := make([]Event, 0, n)
	for _, l := range logs {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].RDN != out[j].RDN {
			return out[i].RDN < out[j].RDN
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// StageSettle is the wire name of the terminal lifecycle stage; LintLog
// keys its one-terminal-outcome-per-trace check on it. (The constant lives
// here rather than in telemetry so the leaf package can validate logs.)
const StageSettle = "settle"

// LintLog validates a (possibly merged) event log against the schema:
// every event carries the current schema version and a known kind, each
// RDN's sequence numbers are strictly increasing and timestamps
// non-decreasing, span events name a trace and a stage, and every traced
// request settles at most once per RDN with a named outcome. It returns
// the first violation found.
func LintLog(evs []Event) error {
	type rdnState struct {
		seq uint64
		at  int64
		has bool
	}
	rdns := make(map[int]*rdnState)
	type traceKey struct {
		trace TraceID
		rdn   int
	}
	settled := make(map[traceKey]bool)
	for i, ev := range evs {
		where := fmt.Sprintf("event %d (rdn %d seq %d)", i, ev.RDN, ev.Seq)
		if ev.Schema != SchemaVersion {
			return fmt.Errorf("obs: %s: schema %d, want %d", where, ev.Schema, SchemaVersion)
		}
		if int(ev.Kind) <= 0 || int(ev.Kind) >= len(kindNames) || kindNames[ev.Kind] == "" {
			return fmt.Errorf("obs: %s: unknown kind %d", where, int(ev.Kind))
		}
		st := rdns[ev.RDN]
		if st == nil {
			st = &rdnState{}
			rdns[ev.RDN] = st
		}
		if st.has {
			if ev.Seq <= st.seq {
				return fmt.Errorf("obs: %s: sequence not increasing (follows seq %d)", where, st.seq)
			}
			if int64(ev.At) < st.at {
				return fmt.Errorf("obs: %s: time moved backwards (%v after %v)", where, ev.At, time.Duration(st.at))
			}
		}
		st.has, st.seq, st.at = true, ev.Seq, int64(ev.At)
		if ev.Kind == KindSpan {
			if ev.Trace == 0 {
				return fmt.Errorf("obs: %s: span event without a trace ID", where)
			}
			if ev.Stage == "" {
				return fmt.Errorf("obs: %s: span event without a stage", where)
			}
			if ev.Stage == StageSettle {
				if ev.Detail == "" {
					return fmt.Errorf("obs: %s: settle span without an outcome", where)
				}
				k := traceKey{ev.Trace, ev.RDN}
				if settled[k] {
					return fmt.Errorf("obs: %s: trace %s settled twice on rdn %d", where, ev.Trace, ev.RDN)
				}
				settled[k] = true
			}
		}
	}
	return nil
}
