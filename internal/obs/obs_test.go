package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	cases := []struct {
		rdn int
		req uint64
	}{
		{0, 0}, {0, 1}, {1, 42}, {2, 1 << 40}, {255, reqMask},
	}
	for _, c := range cases {
		id := Mint(c.rdn, c.req)
		if id == 0 {
			t.Errorf("Mint(%d, %d) minted the zero (untraced) ID", c.rdn, c.req)
		}
		if id.RDN() != c.rdn || id.Req() != c.req {
			t.Errorf("Mint(%d, %d) round-trips to (%d, %d)", c.rdn, c.req, id.RDN(), id.Req())
		}
		s := id.String()
		if len(s) != 16 {
			t.Errorf("String() = %q, want 16 hex digits", s)
		}
		back, err := ParseTraceID(s)
		if err != nil || back != id {
			t.Errorf("ParseTraceID(%q) = %v, %v; want %v", s, back, err, id)
		}
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Error("ParseTraceID accepted garbage")
	}
	// Determinism: same inputs, same ID — replayed drills depend on it.
	if Mint(3, 99) != Mint(3, 99) {
		t.Error("Mint is not deterministic")
	}
}

func TestTraceIDJSON(t *testing.T) {
	type wrap struct {
		Trace TraceID `json:"trace,omitempty"`
	}
	b, err := json.Marshal(wrap{Trace: Mint(1, 0xabc)})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"trace":"0002000000000abc"}`; string(b) != want {
		t.Errorf("marshal = %s, want %s", b, want)
	}
	var w wrap
	if err := json.Unmarshal(b, &w); err != nil || w.Trace != Mint(1, 0xabc) {
		t.Errorf("unmarshal = %+v, %v", w, err)
	}
	// The zero ID stays off the wire.
	b, _ = json.Marshal(wrap{})
	if string(b) != "{}" {
		t.Errorf("zero trace marshals to %s, want {}", b)
	}
}

func TestBusPublishStampsAndRetains(t *testing.T) {
	var now time.Duration
	b := NewBus(BusConfig{RingSize: 4, RDN: 2, Now: func() time.Duration { return now }})
	now = 5 * time.Millisecond
	b.Publish(Event{Kind: KindSpan, Trace: Mint(2, 1), Stage: "classify", Sub: "site1"})
	now = 7 * time.Millisecond
	// A publisher-stamped At and RDN survive untouched.
	b.Publish(Event{Kind: KindCycle, At: 6 * time.Millisecond, RDN: 1, Cycle: 9})
	evs := b.Events()
	if len(evs) != 2 {
		t.Fatalf("Events() returned %d events, want 2", len(evs))
	}
	if evs[0].Schema != SchemaVersion || evs[0].Seq != 1 || evs[0].At != 5*time.Millisecond || evs[0].RDN != 2 {
		t.Errorf("first event stamped wrong: %+v", evs[0])
	}
	if evs[1].Seq != 2 || evs[1].At != 6*time.Millisecond || evs[1].RDN != 1 {
		t.Errorf("pre-stamped event rewritten: %+v", evs[1])
	}
	if b.Seq() != 2 || b.Dropped() != 0 {
		t.Errorf("Seq/Dropped = %d/%d, want 2/0", b.Seq(), b.Dropped())
	}
}

func TestBusRingLapDropsWithoutSpill(t *testing.T) {
	b := NewBus(BusConfig{RingSize: 2, Now: func() time.Duration { return 0 }})
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: KindFault})
	}
	if got := b.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3 (5 published into a 2-slot ring)", got)
	}
	if evs := b.Events(); len(evs) != 2 || evs[0].Seq != 4 || evs[1].Seq != 5 {
		t.Errorf("ring retains %+v, want seqs 4 and 5", evs)
	}
}

func TestBusSpillPreventsDropsAndRoundTrips(t *testing.T) {
	var spill bytes.Buffer
	b := NewBus(BusConfig{RingSize: 2, Spill: &spill, Now: func() time.Duration { return time.Millisecond }})
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: KindBreaker, Node: i + 1, Stage: "open"})
	}
	if got := b.Dropped(); got != 0 {
		t.Errorf("Dropped = %d with a healthy spill, want 0", got)
	}
	if err := b.SpillErr(); err != nil {
		t.Fatalf("SpillErr: %v", err)
	}
	evs, err := ReadLog(&spill)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(evs) != 5 {
		t.Fatalf("spill holds %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Node != i+1 || ev.Kind != KindBreaker {
			t.Errorf("spilled event %d = %+v", i, ev)
		}
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errSpill }

var errSpill = &json.UnsupportedValueError{Str: "spill failed"}

func TestBusSpillErrorCountsDrops(t *testing.T) {
	b := NewBus(BusConfig{RingSize: 1, Spill: failWriter{}, Now: func() time.Duration { return 0 }})
	b.Publish(Event{Kind: KindFault})
	b.Publish(Event{Kind: KindFault})
	if b.SpillErr() == nil {
		t.Fatal("spill failure not retained")
	}
	if got := b.Dropped(); got != 1 {
		t.Errorf("Dropped = %d after spill failed, want 1", got)
	}
}

func TestBusNilReceiver(t *testing.T) {
	var b *Bus
	b.Publish(Event{Kind: KindSpan})
	b.SetClock(func() time.Duration { return 0 })
	b.SetRDN(3)
	if b.Events() != nil || b.Seq() != 0 || b.Dropped() != 0 || b.RingSize() != 0 || b.SpillErr() != nil {
		t.Error("nil bus is not inert")
	}
}

func TestMergeLogsCausalOrder(t *testing.T) {
	mk := func(rdn int, seq uint64, at time.Duration) Event {
		return Event{Schema: SchemaVersion, Seq: seq, At: at, RDN: rdn, Kind: KindCycle}
	}
	a := []Event{mk(1, 1, 10), mk(1, 2, 30)}
	b := []Event{mk(2, 1, 10), mk(2, 2, 20)}
	got := MergeLogs(a, b)
	want := []Event{mk(1, 1, 10), mk(2, 1, 10), mk(2, 2, 20), mk(1, 2, 30)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeLogs = %+v\nwant %+v", got, want)
	}
	// Determinism: merging in any argument order yields the same stream.
	if again := MergeLogs(b, a); !reflect.DeepEqual(again, got) {
		t.Errorf("merge depends on argument order: %+v vs %+v", again, got)
	}
}

func TestLintLog(t *testing.T) {
	ok := []Event{
		{Schema: 1, Seq: 1, At: 1, RDN: 1, Kind: KindSpan, Trace: Mint(1, 1), Stage: "classify"},
		{Schema: 1, Seq: 2, At: 2, RDN: 1, Kind: KindSpan, Trace: Mint(1, 1), Stage: StageSettle, Detail: "served"},
		{Schema: 1, Seq: 1, At: 1, RDN: 2, Kind: KindTier, Detail: "takeover"},
	}
	if err := LintLog(ok); err != nil {
		t.Errorf("clean log flagged: %v", err)
	}
	bad := []struct {
		name string
		evs  []Event
		want string
	}{
		{"schema", []Event{{Schema: 99, Seq: 1, Kind: KindSpan, Trace: 1, Stage: "x"}}, "schema"},
		{"kind", []Event{{Schema: 1, Seq: 1, Kind: 0}}, "kind"},
		{"seq", []Event{
			{Schema: 1, Seq: 2, At: 1, RDN: 1, Kind: KindFault},
			{Schema: 1, Seq: 2, At: 2, RDN: 1, Kind: KindFault},
		}, "sequence"},
		{"time", []Event{
			{Schema: 1, Seq: 1, At: 5, RDN: 1, Kind: KindFault},
			{Schema: 1, Seq: 2, At: 4, RDN: 1, Kind: KindFault},
		}, "backwards"},
		{"traceless span", []Event{{Schema: 1, Seq: 1, Kind: KindSpan, Stage: "classify"}}, "trace ID"},
		{"stageless span", []Event{{Schema: 1, Seq: 1, Kind: KindSpan, Trace: 1}}, "stage"},
		{"outcomeless settle", []Event{{Schema: 1, Seq: 1, Kind: KindSpan, Trace: 1, Stage: StageSettle}}, "outcome"},
		{"double settle", []Event{
			{Schema: 1, Seq: 1, At: 1, Kind: KindSpan, Trace: 1, Stage: StageSettle, Detail: "served"},
			{Schema: 1, Seq: 2, At: 2, Kind: KindSpan, Trace: 1, Stage: StageSettle, Detail: "error"},
		}, "twice"},
	}
	for _, c := range bad {
		err := LintLog(c.evs)
		if err == nil {
			t.Errorf("%s: lint passed a bad log", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// Independent RDN streams may each settle the same trace once — a
	// handoff leaves a terminal outcome on both sides of the fence.
	handoff := []Event{
		{Schema: 1, Seq: 1, At: 1, RDN: 1, Kind: KindSpan, Trace: 7, Stage: StageSettle, Detail: "handed-off"},
		{Schema: 1, Seq: 1, At: 2, RDN: 2, Kind: KindSpan, Trace: 7, Stage: StageSettle, Detail: "served"},
	}
	if err := LintLog(handoff); err != nil {
		t.Errorf("cross-RDN settle flagged: %v", err)
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	evs := []Event{
		{Schema: 1, Seq: 1, At: time.Second, RDN: 1, Kind: KindViolation, Sub: "site1",
			Detail: "open", Exemplars: []string{Mint(1, 5).String()}},
		{Schema: 1, Seq: 2, At: 2 * time.Second, RDN: 1, Kind: KindAdmin, Sub: "site4",
			Detail: "create:infeasible"},
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, evs) {
		t.Errorf("round trip = %+v\nwant %+v", back, evs)
	}
}

// TestBusPublishAllocs is the steady-state allocation gate: with no spill
// attached, publishing into a warm ring must not touch the heap.
func TestBusPublishAllocs(t *testing.T) {
	b := NewBus(BusConfig{RingSize: 64, Now: func() time.Duration { return 0 }})
	ev := Event{Kind: KindSpan, Trace: Mint(0, 1), Sub: "site1", Stage: "classify"}
	if n := testing.AllocsPerRun(1000, func() { b.Publish(ev) }); n != 0 {
		t.Errorf("Publish allocates %.1f/op in steady state, want 0", n)
	}
}

// BenchmarkObsPublish pins the publish hot path for BENCH_obs.json: one
// ring publish, no spill — must report 0 allocs/op.
func BenchmarkObsPublish(b *testing.B) {
	bus := NewBus(BusConfig{RingSize: 4096, Now: func() time.Duration { return 0 }})
	ev := Event{Kind: KindSpan, Trace: Mint(0, 1), Sub: "site1", Stage: "classify"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(ev)
	}
}
