// Package accounting implements the RPN-side resource-usage accounting model
// of §3.5: every charging entity (service subscriber) owns a set of
// processes; the kernel-side drivers charge CPU time, disk-channel time and
// network bytes to individual processes; and once per accounting cycle the
// accountant traverses the process tree, attributes each process's usage to
// its owning entity, and emits the accounting message the RDN consumes.
//
// Because processes are attributed through parent-child links, the model
// automatically covers dynamically spawned workers and CGI children with no
// extra mechanism — the property the paper calls out.
package accounting

import (
	"errors"
	"fmt"
	"sync"

	"gage/internal/core"
	"gage/internal/qos"
)

// ProcessID identifies one process on the RPN.
type ProcessID int

// Accounting errors.
var (
	// ErrUnknownProcess reports an operation on a process that does not exist.
	ErrUnknownProcess = errors.New("accounting: unknown process")
	// ErrHasChildren reports an Exit on a process with live children.
	ErrHasChildren = errors.New("accounting: process has live children")
)

// process is one tracked process: its parent link and usage accumulated
// since the last accounting cycle.
type process struct {
	parent ProcessID // 0 for entity roots
	entity qos.SubscriberID
	delta  qos.Vector
	kids   int
}

// Accountant tracks per-process usage on one RPN and aggregates it per
// charging entity every accounting cycle. It is safe for concurrent use.
type Accountant struct {
	mu sync.Mutex

	node   core.NodeID
	nextID ProcessID
	procs  map[ProcessID]*process

	// pending holds usage of processes that exited mid-cycle, and request
	// completion counts, keyed by entity.
	pending   map[qos.SubscriberID]qos.Vector
	completed map[qos.SubscriberID]int

	// cumulative per-entity usage and completion counts across all cycles.
	cumulative     map[qos.SubscriberID]qos.Vector
	cumCompleted   map[qos.SubscriberID]int
	totalAttribute qos.Vector
}

// NewAccountant returns an accountant reporting as the given node.
func NewAccountant(node core.NodeID) *Accountant {
	return &Accountant{
		node:         node,
		procs:        make(map[ProcessID]*process),
		pending:      make(map[qos.SubscriberID]qos.Vector),
		completed:    make(map[qos.SubscriberID]int),
		cumulative:   make(map[qos.SubscriberID]qos.Vector),
		cumCompleted: make(map[qos.SubscriberID]int),
	}
}

// Launch creates the first process of a charging entity — the paper's
// "when a charging entity is launched, Gage records the first process
// associated with the entity".
func (a *Accountant) Launch(entity qos.SubscriberID) ProcessID {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	pid := a.nextID
	a.procs[pid] = &process{entity: entity}
	return pid
}

// Spawn creates a child of an existing process. The child is attributed to
// the parent's entity through the process tree.
func (a *Accountant) Spawn(parent ProcessID) (ProcessID, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.procs[parent]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownProcess, parent)
	}
	a.nextID++
	pid := a.nextID
	a.procs[pid] = &process{parent: parent}
	p.kids++
	return pid, nil
}

// Exit removes a process, folding its uncollected usage into its entity's
// pending bucket so no usage is lost between cycles. Processes with live
// children cannot exit (ErrHasChildren): the tree must stay attributable.
func (a *Accountant) Exit(pid ProcessID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.procs[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownProcess, pid)
	}
	if p.kids > 0 {
		return fmt.Errorf("%w: %d", ErrHasChildren, pid)
	}
	entity, err := a.entityOfLocked(pid)
	if err != nil {
		return err
	}
	if !p.delta.IsZero() {
		a.pending[entity] = a.pending[entity].Add(p.delta)
	}
	if p.parent != 0 {
		if pp, ok := a.procs[p.parent]; ok {
			pp.kids--
		}
	}
	delete(a.procs, pid)
	return nil
}

// Charge attributes resource usage to a process, as the kernel's scheduler
// and disk driver do in the paper's prototype.
func (a *Accountant) Charge(pid ProcessID, usage qos.Vector) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.procs[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownProcess, pid)
	}
	p.delta = p.delta.Add(usage)
	return nil
}

// CompleteRequest records that one of the entity's requests finished; the
// count rides on the next accounting message so the RDN's predictor can
// compute per-request averages.
func (a *Accountant) CompleteRequest(pid ProcessID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	entity, err := a.entityOfLocked(pid)
	if err != nil {
		return err
	}
	a.completed[entity]++
	return nil
}

// EntityOf resolves the charging entity owning a process by walking its
// ancestry, memoizing the result — the paper's periodic parent-child
// traversal.
func (a *Accountant) EntityOf(pid ProcessID) (qos.SubscriberID, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.entityOfLocked(pid)
}

func (a *Accountant) entityOfLocked(pid ProcessID) (qos.SubscriberID, error) {
	p, ok := a.procs[pid]
	if !ok {
		return "", fmt.Errorf("%w: %d", ErrUnknownProcess, pid)
	}
	if p.entity != "" {
		return p.entity, nil
	}
	entity, err := a.entityOfLocked(p.parent)
	if err != nil {
		return "", fmt.Errorf("accounting: resolve %d: %w", pid, err)
	}
	p.entity = entity // memoize
	return entity, nil
}

// Cycle performs one accounting cycle: it traverses all processes, sums each
// entity's usage since the previous cycle (including exited processes'
// residue), zeroes the deltas, and returns the accounting message for the
// RDN. Entities with no activity are omitted.
func (a *Accountant) Cycle() core.UsageReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := core.UsageReport{
		Node:         a.node,
		BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage),
	}
	add := func(entity qos.SubscriberID, usage qos.Vector) {
		u := rep.BySubscriber[entity]
		u.Usage = u.Usage.Add(usage)
		rep.BySubscriber[entity] = u
		rep.Total = rep.Total.Add(usage)
		a.cumulative[entity] = a.cumulative[entity].Add(usage)
		a.totalAttribute = a.totalAttribute.Add(usage)
	}
	for pid, p := range a.procs {
		if p.delta.IsZero() {
			continue
		}
		entity, err := a.entityOfLocked(pid)
		if err != nil {
			continue // orphaned process: unattributable, skip
		}
		add(entity, p.delta)
		p.delta = qos.Vector{}
	}
	for entity, usage := range a.pending {
		add(entity, usage)
		delete(a.pending, entity)
	}
	for entity, n := range a.completed {
		u := rep.BySubscriber[entity]
		u.Completed = n
		rep.BySubscriber[entity] = u
		a.cumCompleted[entity] += n
		delete(a.completed, entity)
	}
	return rep
}

// CumulativeReport folds any uncollected deltas into the running totals and
// returns the *cumulative* usage and completion counts since the accountant
// started. Unlike Cycle's deltas, cumulative reports are loss-tolerant: a
// reader that misses one can diff the next against its last-seen snapshot
// and lose nothing.
func (a *Accountant) CumulativeReport() core.UsageReport {
	a.Cycle() // fold pending deltas into the cumulative maps
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := core.UsageReport{
		Node:         a.node,
		Total:        a.totalAttribute,
		BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage, len(a.cumulative)),
	}
	for entity, usage := range a.cumulative {
		rep.BySubscriber[entity] = core.SubscriberUsage{
			Usage:     usage,
			Completed: a.cumCompleted[entity],
		}
	}
	return rep
}

// Cumulative returns an entity's total attributed usage across all cycles.
func (a *Accountant) Cumulative(entity qos.SubscriberID) qos.Vector {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cumulative[entity]
}

// LiveProcesses returns the number of tracked processes.
func (a *Accountant) LiveProcesses() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.procs)
}
