package accounting

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gage/internal/qos"
)

func usage(cpuMS, diskMS int, bytes int64) qos.Vector {
	return qos.Vector{
		CPUTime:  time.Duration(cpuMS) * time.Millisecond,
		DiskTime: time.Duration(diskMS) * time.Millisecond,
		NetBytes: bytes,
	}
}

func TestLaunchChargeCycle(t *testing.T) {
	a := NewAccountant(1)
	pid := a.Launch("site1")
	if err := a.Charge(pid, usage(10, 10, 2000)); err != nil {
		t.Fatalf("Charge: %v", err)
	}
	if err := a.CompleteRequest(pid); err != nil {
		t.Fatalf("CompleteRequest: %v", err)
	}
	rep := a.Cycle()
	if rep.Node != 1 {
		t.Errorf("report node = %d, want 1", rep.Node)
	}
	u, ok := rep.BySubscriber["site1"]
	if !ok {
		t.Fatal("report must include site1")
	}
	if u.Usage != usage(10, 10, 2000) || u.Completed != 1 {
		t.Errorf("site1 usage = %+v, want 10ms/10ms/2000B ×1", u)
	}
	if rep.Total != usage(10, 10, 2000) {
		t.Errorf("total = %v, want per-entity sum", rep.Total)
	}
}

func TestCycleResetsDeltas(t *testing.T) {
	a := NewAccountant(1)
	pid := a.Launch("site1")
	if err := a.Charge(pid, usage(5, 0, 0)); err != nil {
		t.Fatalf("Charge: %v", err)
	}
	a.Cycle()
	rep := a.Cycle()
	if len(rep.BySubscriber) != 0 {
		t.Errorf("second cycle must be empty, got %+v", rep.BySubscriber)
	}
	if !rep.Total.IsZero() {
		t.Errorf("second cycle total = %v, want zero", rep.Total)
	}
	if got := a.Cumulative("site1"); got != usage(5, 0, 0) {
		t.Errorf("cumulative = %v, want 5ms CPU", got)
	}
}

func TestChildProcessesChargeTheRootEntity(t *testing.T) {
	a := NewAccountant(1)
	root := a.Launch("site1")
	child, err := a.Spawn(root)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	grandchild, err := a.Spawn(child)
	if err != nil {
		t.Fatalf("Spawn grandchild: %v", err)
	}
	if err := a.Charge(grandchild, usage(7, 3, 100)); err != nil {
		t.Fatalf("Charge: %v", err)
	}
	rep := a.Cycle()
	if got := rep.BySubscriber["site1"].Usage; got != usage(7, 3, 100) {
		t.Errorf("grandchild usage attributed = %v, want 7ms/3ms/100B", got)
	}
	if id, err := a.EntityOf(grandchild); err != nil || id != "site1" {
		t.Errorf("EntityOf(grandchild) = (%q, %v), want site1", id, err)
	}
}

func TestTwoEntitiesStaySeparate(t *testing.T) {
	a := NewAccountant(2)
	p1 := a.Launch("site1")
	p2 := a.Launch("site2")
	if err := a.Charge(p1, usage(10, 0, 0)); err != nil {
		t.Fatalf("Charge p1: %v", err)
	}
	if err := a.Charge(p2, usage(0, 20, 0)); err != nil {
		t.Fatalf("Charge p2: %v", err)
	}
	rep := a.Cycle()
	if got := rep.BySubscriber["site1"].Usage; got != usage(10, 0, 0) {
		t.Errorf("site1 = %v, want CPU only", got)
	}
	if got := rep.BySubscriber["site2"].Usage; got != usage(0, 20, 0) {
		t.Errorf("site2 = %v, want disk only", got)
	}
	if rep.Total != usage(10, 20, 0) {
		t.Errorf("total = %v, want sum", rep.Total)
	}
}

func TestExitFoldsResidualUsage(t *testing.T) {
	// A CGI child that exits mid-cycle must not lose its usage.
	a := NewAccountant(1)
	root := a.Launch("site1")
	cgi, err := a.Spawn(root)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := a.Charge(cgi, usage(30, 5, 4000)); err != nil {
		t.Fatalf("Charge: %v", err)
	}
	if err := a.Exit(cgi); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	if a.LiveProcesses() != 1 {
		t.Errorf("live processes = %d, want 1", a.LiveProcesses())
	}
	rep := a.Cycle()
	if got := rep.BySubscriber["site1"].Usage; got != usage(30, 5, 4000) {
		t.Errorf("exited CGI usage = %v, want 30ms/5ms/4000B", got)
	}
}

func TestExitWithLiveChildrenRefused(t *testing.T) {
	a := NewAccountant(1)
	root := a.Launch("site1")
	if _, err := a.Spawn(root); err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := a.Exit(root); !errors.Is(err, ErrHasChildren) {
		t.Errorf("Exit(parent) = %v, want ErrHasChildren", err)
	}
}

func TestExitThenParentExit(t *testing.T) {
	a := NewAccountant(1)
	root := a.Launch("site1")
	child, err := a.Spawn(root)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := a.Exit(child); err != nil {
		t.Fatalf("Exit child: %v", err)
	}
	if err := a.Exit(root); err != nil {
		t.Fatalf("Exit root after child: %v", err)
	}
	if a.LiveProcesses() != 0 {
		t.Errorf("live processes = %d, want 0", a.LiveProcesses())
	}
}

func TestUnknownProcessErrors(t *testing.T) {
	a := NewAccountant(1)
	if err := a.Charge(42, usage(1, 0, 0)); !errors.Is(err, ErrUnknownProcess) {
		t.Errorf("Charge unknown = %v, want ErrUnknownProcess", err)
	}
	if _, err := a.Spawn(42); !errors.Is(err, ErrUnknownProcess) {
		t.Errorf("Spawn unknown = %v, want ErrUnknownProcess", err)
	}
	if err := a.Exit(42); !errors.Is(err, ErrUnknownProcess) {
		t.Errorf("Exit unknown = %v, want ErrUnknownProcess", err)
	}
	if err := a.CompleteRequest(42); !errors.Is(err, ErrUnknownProcess) {
		t.Errorf("CompleteRequest unknown = %v, want ErrUnknownProcess", err)
	}
	if _, err := a.EntityOf(42); !errors.Is(err, ErrUnknownProcess) {
		t.Errorf("EntityOf unknown = %v, want ErrUnknownProcess", err)
	}
}

func TestCompletedCountsResetPerCycle(t *testing.T) {
	a := NewAccountant(1)
	pid := a.Launch("site1")
	for i := 0; i < 3; i++ {
		if err := a.CompleteRequest(pid); err != nil {
			t.Fatalf("CompleteRequest: %v", err)
		}
	}
	rep := a.Cycle()
	if got := rep.BySubscriber["site1"].Completed; got != 3 {
		t.Errorf("completed = %d, want 3", got)
	}
	rep = a.Cycle()
	if got := rep.BySubscriber["site1"].Completed; got != 0 {
		t.Errorf("completed after reset = %d, want 0", got)
	}
}

// Property: no usage is ever lost or invented — the sum of all cycle totals
// equals the sum of all charges, under random process churn.
func TestConservationUnderChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAccountant(1)
		roots := []ProcessID{a.Launch("e1"), a.Launch("e2")}
		live := append([]ProcessID{}, roots...)
		var charged, reported qos.Vector
		for i := 0; i < 300; i++ {
			switch rng.Intn(5) {
			case 0: // spawn
				parent := live[rng.Intn(len(live))]
				if pid, err := a.Spawn(parent); err == nil {
					live = append(live, pid)
				}
			case 1: // exit a random non-root leaf (ignore refusals)
				pid := live[rng.Intn(len(live))]
				if pid != roots[0] && pid != roots[1] {
					if err := a.Exit(pid); err == nil {
						for j, p := range live {
							if p == pid {
								live = append(live[:j], live[j+1:]...)
								break
							}
						}
					}
				}
			case 2, 3: // charge
				pid := live[rng.Intn(len(live))]
				u := usage(rng.Intn(10), rng.Intn(10), int64(rng.Intn(1000)))
				if err := a.Charge(pid, u); err == nil {
					charged = charged.Add(u)
				}
			case 4: // cycle
				reported = reported.Add(a.Cycle().Total)
			}
		}
		reported = reported.Add(a.Cycle().Total)
		return reported == charged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCumulativeReport(t *testing.T) {
	a := NewAccountant(5)
	pid := a.Launch("site1")
	if err := a.Charge(pid, usage(10, 0, 100)); err != nil {
		t.Fatalf("Charge: %v", err)
	}
	if err := a.CompleteRequest(pid); err != nil {
		t.Fatalf("CompleteRequest: %v", err)
	}
	rep1 := a.CumulativeReport()
	if got := rep1.BySubscriber["site1"]; got.Completed != 1 || got.Usage != usage(10, 0, 100) {
		t.Errorf("first cumulative = %+v", got)
	}
	// More work, then another cumulative report: totals accumulate, and
	// uncollected deltas are folded in.
	if err := a.Charge(pid, usage(5, 0, 50)); err != nil {
		t.Fatalf("Charge: %v", err)
	}
	if err := a.CompleteRequest(pid); err != nil {
		t.Fatalf("CompleteRequest: %v", err)
	}
	rep2 := a.CumulativeReport()
	if got := rep2.BySubscriber["site1"]; got.Completed != 2 || got.Usage != usage(15, 0, 150) {
		t.Errorf("second cumulative = %+v", got)
	}
	if rep2.Total != usage(15, 0, 150) {
		t.Errorf("cumulative total = %v", rep2.Total)
	}
	// Cumulative reporting must not disturb delta cycles' bookkeeping: a
	// Cycle right after shows nothing new.
	if rep := a.Cycle(); len(rep.BySubscriber) != 0 {
		t.Errorf("cycle after cumulative = %+v, want empty", rep.BySubscriber)
	}
}

func TestCumulativeMatchesEntitySums(t *testing.T) {
	a := NewAccountant(1)
	p1 := a.Launch("site1")
	for i := 0; i < 5; i++ {
		if err := a.Charge(p1, usage(2, 1, 10)); err != nil {
			t.Fatalf("Charge: %v", err)
		}
		a.Cycle()
	}
	want := usage(10, 5, 50)
	if got := a.Cumulative("site1"); got != want {
		t.Errorf("Cumulative = %v, want %v", got, want)
	}
	if got := a.Cumulative("ghost"); !got.IsZero() {
		t.Errorf("Cumulative(ghost) = %v, want zero", got)
	}
}
