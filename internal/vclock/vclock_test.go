package vclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine(time.Time{})
	var got []int
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.After(10*time.Millisecond, func() { got = append(got, 1) })
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOForEqualTimes(t *testing.T) {
	e := NewEngine(time.Time{})
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events out of FIFO order: %v", got)
		}
	}
}

func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(time.Time{})
		var fired []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Microsecond
			e.After(d, func() { fired = append(fired, d) })
		}
		if err := e.RunFor(time.Hour); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEngineClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine(time.Time{})
	var at time.Time
	e.After(42*time.Millisecond, func() { at = e.Now() })
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if want := (time.Time{}).Add(42 * time.Millisecond); !at.Equal(want) {
		t.Errorf("clock inside event = %v, want %v", at, want)
	}
	if want := (time.Time{}).Add(time.Second); !e.Now().Equal(want) {
		t.Errorf("clock after RunFor = %v, want %v", e.Now(), want)
	}
}

func TestEnginePastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine(time.Time{}.Add(time.Hour))
	fired := false
	e.At(time.Time{}, func() { fired = true })
	if err := e.RunFor(time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !fired {
		t.Error("past-scheduled event must fire immediately")
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(time.Time{})
	fired := false
	timer := e.After(10*time.Millisecond, func() { fired = true })
	if !timer.Stop() {
		t.Error("first Stop should report true")
	}
	if timer.Stop() {
		t.Error("second Stop should report false")
	}
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if fired {
		t.Error("stopped timer must not fire")
	}
}

func TestTimerStopMiddleOfHeap(t *testing.T) {
	e := NewEngine(time.Time{})
	var got []int
	var timers []Timer
	for i := 0; i < 5; i++ {
		i := i
		timers = append(timers, e.After(time.Duration(i+1)*time.Millisecond, func() { got = append(got, i) }))
	}
	timers[2].Stop()
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired = %v, want %v", got, want)
		}
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine(time.Time{})
	count := 0
	stop := e.Every(10*time.Millisecond, func() { count++ })
	if err := e.RunFor(55 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 5 {
		t.Errorf("ticks in 55ms at 10ms period = %d, want 5", count)
	}
	stop()
	if err := e.RunFor(100 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 5 {
		t.Errorf("ticks after stop = %d, want 5", count)
	}
}

func TestEveryStopFromWithinCallback(t *testing.T) {
	e := NewEngine(time.Time{})
	count := 0
	var stop func()
	stop = e.Every(time.Millisecond, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 3 {
		t.Errorf("self-stopped ticker fired %d times, want 3", count)
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	e := NewEngine(time.Time{})
	fired := false
	e.After(100*time.Millisecond, func() { fired = true })
	if err := e.RunFor(50 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if fired {
		t.Error("event beyond the deadline must not fire")
	}
	if e.Len() != 1 {
		t.Errorf("pending events = %d, want 1", e.Len())
	}
	if err := e.RunFor(50 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !fired {
		t.Error("event must fire once the deadline passes it")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(time.Time{})
	count := 0
	e.Every(time.Millisecond, func() {
		count++
		if count == 2 {
			e.Stop()
		}
	})
	err := e.RunFor(time.Second)
	if err != ErrStopped {
		t.Errorf("RunFor after Stop = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Errorf("events after stop = %d, want 2", count)
	}
	if e.Step() {
		t.Error("Step after Stop must be a no-op")
	}
	if !e.Stopped() {
		t.Error("Stopped() must report true")
	}
}

func TestDrainFiresEverything(t *testing.T) {
	e := NewEngine(time.Time{})
	count := 0
	for i := 0; i < 7; i++ {
		e.After(time.Duration(i)*time.Hour, func() { count++ })
	}
	if err := e.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if count != 7 {
		t.Errorf("drained %d events, want 7", count)
	}
}

func TestEventsScheduledDuringEventsFire(t *testing.T) {
	e := NewEngine(time.Time{})
	var order []string
	e.After(time.Millisecond, func() {
		order = append(order, "outer")
		e.After(time.Millisecond, func() { order = append(order, "inner") })
	})
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Errorf("order = %v, want [outer inner]", order)
	}
}

func TestRealClock(t *testing.T) {
	before := time.Now()
	got := RealClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("RealClock.Now() = %v outside [%v, %v]", got, before, after)
	}
}
