// Package vclock provides the virtual-time discrete-event engine that drives
// Gage's cluster and network simulators, plus a real-clock adapter so the
// same scheduling code can run against wall time in the live dispatcher.
//
// The engine is deterministic: events scheduled for the same instant fire in
// FIFO order of scheduling, so simulation runs are exactly reproducible.
package vclock

import (
	"container/heap"
	"errors"
	"time"
)

// Clock exposes the current time to components that must work both in
// simulation and against wall time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// ErrStopped is returned by Run variants after Stop has been called.
var ErrStopped = errors.New("vclock: engine stopped")

// event is one scheduled callback.
type event struct {
	at   time.Time
	seq  uint64 // FIFO tie-break for identical times
	fn   func()
	heap *eventHeap
	idx  int // index in heap, -1 once popped or cancelled
}

// Timer handles a scheduled event and allows cancellation.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.idx < 0 {
		return false
	}
	heap.Remove(t.ev.heap, t.ev.idx)
	t.ev.idx = -1
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all components of one simulation share one goroutine.
type Engine struct {
	now     time.Time
	queue   eventHeap
	nextSeq uint64
	stopped bool
}

// NewEngine returns an engine whose clock starts at the given origin.
// A zero origin is valid and convenient: times are then just offsets.
func NewEngine(origin time.Time) *Engine {
	return &Engine{now: origin}
}

var _ Clock = (*Engine)(nil)

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.queue) }

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// clamps to Now, which makes "run immediately" idioms safe.
func (e *Engine) At(t time.Time, fn func()) *Timer {
	if t.Before(e.now) {
		t = e.now
	}
	ev := &event{at: t, seq: e.nextSeq, fn: fn, heap: &e.queue}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now.Add(d), fn)
}

// Every schedules fn to run every period, starting one period from now, until
// the returned Timer chain is stopped via the returned stop function.
func (e *Engine) Every(period time.Duration, fn func()) (stop func()) {
	var (
		timer   *Timer
		stopped bool
	)
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			timer = e.After(period, tick)
		}
	}
	timer = e.After(period, tick)
	return func() {
		stopped = true
		timer.Stop()
	}
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Stop halts the engine: Run and Step become no-ops.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// RunUntil fires events in order until the queue empties, the engine is
// stopped, or the next event lies after deadline. The clock is left at
// min(deadline, last fired event). It returns ErrStopped if halted by Stop.
func (e *Engine) RunUntil(deadline time.Time) error {
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		if e.queue[0].at.After(deadline) {
			break
		}
		e.Step()
	}
	if e.stopped {
		return ErrStopped
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
	return nil
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d time.Duration) error {
	return e.RunUntil(e.now.Add(d))
}

// Drain fires all pending events regardless of time. Use with care: with
// self-rescheduling periodic events this never returns; prefer RunUntil.
func (e *Engine) Drain() error {
	for e.Step() {
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// RealClock adapts the wall clock to the Clock interface.
type RealClock struct{}

var _ Clock = RealClock{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }
