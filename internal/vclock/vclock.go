// Package vclock provides the virtual-time discrete-event engine that drives
// Gage's cluster and network simulators, plus a real-clock adapter so the
// same scheduling code can run against wall time in the live dispatcher.
//
// The engine is deterministic: events scheduled for the same instant fire in
// FIFO order of scheduling, so simulation runs are exactly reproducible.
package vclock

import (
	"container/heap"
	"errors"
	"time"
)

// Clock exposes the current time to components that must work both in
// simulation and against wall time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// ErrStopped is returned by Run variants after Stop has been called.
var ErrStopped = errors.New("vclock: engine stopped")

// event is one scheduled callback. Nodes are recycled through the engine's
// free list once fired or cancelled; gen disambiguates a recycled node from
// the one a stale Timer still points at.
type event struct {
	at    time.Time
	seq   uint64 // FIFO tie-break for identical times
	gen   uint32 // bumped on recycle; stale Timer.Stop becomes a no-op
	fn    func()
	argFn func(any)
	arg   any
	eng   *Engine
	idx   int // index in heap, -1 once popped or cancelled
}

// Timer handles a scheduled event and allows cancellation. The zero Timer is
// valid and Stop on it reports false.
type Timer struct {
	ev  *event
	gen uint32
}

// Stop cancels the timer. It reports whether the event was still pending.
// Stopping an already-fired, already-stopped, or zero Timer is a safe no-op:
// the generation check keeps a stale handle from cancelling whatever event
// reuses its node.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.idx < 0 {
		return false
	}
	heap.Remove(&ev.eng.queue, ev.idx)
	ev.eng.recycle(ev)
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all components of one simulation share one goroutine.
type Engine struct {
	now     time.Time
	queue   eventHeap
	free    []*event // recycled event nodes; steady state allocates none
	nextSeq uint64
	stopped bool
}

// NewEngine returns an engine whose clock starts at the given origin.
// A zero origin is valid and convenient: times are then just offsets.
func NewEngine(origin time.Time) *Engine {
	return &Engine{now: origin}
}

var _ Clock = (*Engine)(nil)

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.queue) }

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// clamps to Now, which makes "run immediately" idioms safe.
func (e *Engine) At(t time.Time, fn func()) Timer {
	return e.schedule(t, fn, nil, nil)
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	return e.schedule(e.now.Add(d), fn, nil, nil)
}

// AtArg schedules fn(arg) at instant t. With a shared top-level fn and a
// pointer-typed arg this is allocation-free where a closure capturing the
// same state would allocate per event — the idiom for simulator hot paths.
func (e *Engine) AtArg(t time.Time, fn func(any), arg any) Timer {
	return e.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d from now.
func (e *Engine) AfterArg(d time.Duration, fn func(any), arg any) Timer {
	return e.schedule(e.now.Add(d), nil, fn, arg)
}

func (e *Engine) schedule(t time.Time, fn func(), argFn func(any), arg any) Timer {
	if t.Before(e.now) {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{eng: e}
	}
	ev.at, ev.seq, ev.fn, ev.argFn, ev.arg = t, e.nextSeq, fn, argFn, arg
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// recycle returns a popped or cancelled event node to the free list. The
// generation bump invalidates every Timer handed out for this node.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.argFn, ev.arg = nil, nil, nil
	e.free = append(e.free, ev)
}

// Every schedules fn to run every period, starting one period from now, until
// the returned Timer chain is stopped via the returned stop function.
func (e *Engine) Every(period time.Duration, fn func()) (stop func()) {
	var (
		timer   Timer
		stopped bool
	)
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			timer = e.After(period, tick)
		}
	}
	timer = e.After(period, tick)
	return func() {
		stopped = true
		timer.Stop()
	}
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if e.stopped || len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	fn, argFn, arg := ev.fn, ev.argFn, ev.arg
	// Recycle before running: the callback may schedule new events (reusing
	// this node) and any Timer for this firing is already invalidated.
	e.recycle(ev)
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
	return true
}

// Stop halts the engine: Run and Step become no-ops.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// RunUntil fires events in order until the queue empties, the engine is
// stopped, or the next event lies after deadline. The clock is left at
// min(deadline, last fired event). It returns ErrStopped if halted by Stop.
func (e *Engine) RunUntil(deadline time.Time) error {
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		if e.queue[0].at.After(deadline) {
			break
		}
		e.Step()
	}
	if e.stopped {
		return ErrStopped
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
	return nil
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d time.Duration) error {
	return e.RunUntil(e.now.Add(d))
}

// Drain fires all pending events regardless of time. Use with care: with
// self-rescheduling periodic events this never returns; prefer RunUntil.
func (e *Engine) Drain() error {
	for e.Step() {
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// RealClock adapts the wall clock to the Clock interface.
type RealClock struct{}

var _ Clock = RealClock{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }
