// Package netsim is a deterministic packet-level network simulator with a
// TCP-lite transport: Ethernet-style frames with MAC addresses, a learning
// switch, IPv4-style addresses and ports, three-way handshakes, sequence
// numbers and cumulative ACKs. It exists so Gage's distributed TCP splicing
// — handshake emulation at the RDN and sequence-number/address remapping at
// each RPN's local service manager — can be implemented and measured against
// the same packet fields a kernel module would touch.
//
// The network is reliable and delivers frames in FIFO order per link, so the
// transport needs no retransmission or windowing; the state machines cover
// connection setup, bidirectional data transfer with ACKs, and teardown.
package netsim

import (
	"fmt"
)

// MAC is a link-layer address.
type MAC uint64

// IPAddr is a network-layer address.
type IPAddr [4]byte

// String formats the address in dotted-quad form.
func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Flags is the TCP-lite control-flag set.
type Flags uint8

// TCP-lite flags.
const (
	SYN Flags = 1 << iota
	ACK
	FIN
	PSH
)

// Has reports whether all the given flags are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// String formats the flag set for traces.
func (f Flags) String() string {
	s := ""
	if f.Has(SYN) {
		s += "S"
	}
	if f.Has(ACK) {
		s += "A"
	}
	if f.Has(FIN) {
		s += "F"
	}
	if f.Has(PSH) {
		s += "P"
	}
	if s == "" {
		s = "-"
	}
	return s
}

// Packet is one TCP-lite segment in an Ethernet-style frame. Packets are
// passed by value; payloads are shared and must not be mutated by receivers.
type Packet struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPAddr
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            Flags
	Payload          []byte
}

// String formats the packet one-line for traces and test failures.
func (p Packet) String() string {
	return fmt.Sprintf("%s:%d->%s:%d %s seq=%d ack=%d len=%d",
		p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, p.Flags, p.Seq, p.Ack, len(p.Payload))
}

// FlowKey identifies the packet's flow as seen on the wire.
type FlowKey struct {
	SrcIP, DstIP     IPAddr
	SrcPort, DstPort uint16
}

// Flow returns the packet's flow key.
func (p Packet) Flow() FlowKey {
	return FlowKey{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort}
}

// Reverse returns the flow key of traffic in the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort}
}
