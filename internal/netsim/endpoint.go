package netsim

import (
	"errors"
	"fmt"
	"time"

	"gage/internal/vclock"
)

// MSS is the maximum payload per TCP-lite segment.
const MSS = 1460

// Retransmission parameters: a fixed retransmission timeout (the simulated
// LAN has no RTT variance worth estimating) and a give-up bound.
const (
	// RTO is the Go-Back-N retransmission timeout.
	RTO = 200 * time.Millisecond
	// MaxRetries closes a connection that cannot get anything through.
	MaxRetries = 10
)

// connState is the TCP-lite connection state.
type connState int

const (
	stateSynSent connState = iota + 1
	stateSynRcvd
	stateEstablished
	stateFinWait // we sent FIN; retransmission continues until acked
	stateClosed
)

// Conn is one TCP-lite connection endpoint.
type Conn struct {
	stack *Stack
	state connState

	localPort  uint16
	remoteIP   IPAddr
	remotePort uint16
	remoteMAC  MAC

	sndNxt uint32 // next sequence number to send
	rcvNxt uint32 // next sequence number expected

	// Go-Back-N sender state: unacknowledged segments in send order, the
	// running retransmission timer, and the consecutive-timeout count.
	retxq     []Packet
	retxTimer vclock.Timer
	retxArmed bool
	retries   int

	// OnData is called with each in-order payload delivered to this
	// endpoint. Set before data can arrive (at accept/connect time).
	OnData func(c *Conn, data []byte)
	// OnEstablished fires when the handshake completes.
	OnEstablished func(c *Conn)
	// OnClose fires when the peer's FIN is processed.
	OnClose func(c *Conn)
}

// State helpers for tests.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Closed reports whether the connection has been torn down.
func (c *Conn) Closed() bool { return c.state == stateClosed }

// LocalPort returns the endpoint's port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemoteAddr returns the peer's IP and port.
func (c *Conn) RemoteAddr() (IPAddr, uint16) { return c.remoteIP, c.remotePort }

// SndNxt exposes the sender sequence state (the splicer needs it).
func (c *Conn) SndNxt() uint32 { return c.sndNxt }

// RcvNxt exposes the receiver sequence state.
func (c *Conn) RcvNxt() uint32 { return c.rcvNxt }

// Send transmits application data, segmented to the MSS. It is a no-op on a
// connection that is not established.
func (c *Conn) Send(data []byte) {
	if c.state != stateEstablished {
		return
	}
	for len(data) > 0 {
		n := len(data)
		if n > MSS {
			n = MSS
		}
		seg := data[:n]
		data = data[n:]
		// Sequence state advances before transmission: transmit may
		// synchronously re-enter the stack (the LSM's egress hook injects
		// packets back), and the stream must already be consistent then.
		seq := c.sndNxt
		c.sndNxt += uint32(n)
		c.sendTracked(Packet{
			SrcMAC:  c.stack.mac,
			DstMAC:  c.remoteMAC,
			SrcIP:   c.stack.ip,
			DstIP:   c.remoteIP,
			SrcPort: c.localPort,
			DstPort: c.remotePort,
			Seq:     seq,
			Ack:     c.rcvNxt,
			Flags:   ACK | PSH,
			Payload: seg,
		})
	}
}

// Close sends a FIN and enters FIN-WAIT: unacknowledged data (and the FIN
// itself) keep retransmitting until the peer has everything, then the
// connection finalizes.
func (c *Conn) Close() {
	if c.state != stateEstablished && c.state != stateSynRcvd {
		return
	}
	seq := c.sndNxt
	c.sndNxt++
	c.state = stateFinWait
	c.sendTracked(Packet{
		SrcMAC:  c.stack.mac,
		DstMAC:  c.remoteMAC,
		SrcIP:   c.stack.ip,
		DstIP:   c.remoteIP,
		SrcPort: c.localPort,
		DstPort: c.remotePort,
		Seq:     seq,
		Ack:     c.rcvNxt,
		Flags:   FIN | ACK,
	})
	// A lossless same-instant ack may already have finalized us; otherwise
	// the ACK-processing path finalizes when the queue drains.
	c.maybeFinalize()
}

// maybeFinalize completes a FIN-WAIT close once nothing is left in flight.
func (c *Conn) maybeFinalize() {
	if c.state != stateFinWait || len(c.retxq) != 0 {
		return
	}
	c.state = stateClosed
	delete(c.stack.conns, connKey{ip: c.remoteIP, port: c.remotePort, local: c.localPort})
	c.retxTimer.Stop()
	c.retxArmed = false
}

// sendTracked transmits a retransmittable segment (SYN, SYNACK, data): it
// joins the Go-Back-N queue and arms the retransmission timer.
func (c *Conn) sendTracked(pkt Packet) {
	c.retxq = append(c.retxq, pkt)
	c.armRetx()
	c.stack.transmit(pkt)
}

func (c *Conn) armRetx() {
	if c.retxArmed {
		return
	}
	c.retxArmed = true
	c.retxTimer = c.stack.netw.Timer(RTO, c.onRetxTimeout)
}

// onRetxTimeout resends everything unacknowledged (Go-Back-N) or gives up
// after MaxRetries consecutive silent timeouts.
func (c *Conn) onRetxTimeout() {
	c.retxArmed = false
	if c.state == stateClosed || len(c.retxq) == 0 {
		return
	}
	c.retries++
	if c.retries > MaxRetries {
		c.state = stateClosed
		delete(c.stack.conns, connKey{ip: c.remoteIP, port: c.remotePort, local: c.localPort})
		if c.OnClose != nil {
			c.OnClose(c)
		}
		return
	}
	for _, pkt := range c.retxq {
		pkt.Ack = c.rcvNxt // refresh the cumulative acknowledgement
		c.stack.transmit(pkt)
	}
	c.armRetx()
}

// processAck advances the Go-Back-N window past fully acknowledged segments.
func (c *Conn) processAck(ack uint32) {
	popped := false
	for len(c.retxq) > 0 && seqLE(seqEnd(c.retxq[0]), ack) {
		c.retxq = c.retxq[1:]
		popped = true
	}
	if popped {
		c.retries = 0
		if len(c.retxq) == 0 {
			c.retxTimer.Stop()
			c.retxArmed = false
		}
		c.maybeFinalize()
	}
}

// seqEnd returns the sequence number just past a segment (SYN and FIN each
// occupy one sequence slot).
func seqEnd(pkt Packet) uint32 {
	end := pkt.Seq + uint32(len(pkt.Payload))
	if pkt.Flags.Has(SYN) || pkt.Flags.Has(FIN) {
		end++
	}
	return end
}

// seqLE compares sequence numbers modulo 2³².
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

// connKey demultiplexes incoming packets to connections.
type connKey struct {
	ip    IPAddr
	port  uint16
	local uint16
}

// Stack is one host's TCP-lite stack: a NIC (MAC + IP), listeners, and live
// connections. It implements Receiver.
type Stack struct {
	netw *Network
	mac  MAC
	ip   IPAddr

	listeners map[uint16]func(*Conn)
	conns     map[connKey]*Conn

	nextEphemeral uint16
	nextISN       uint32

	// egress overrides frame transmission; the local service manager hooks
	// here to remap outgoing packets. nil sends straight to the network.
	egress func(Packet)

	// arp resolves IPs to MACs via the network's registry.
	arp func(IPAddr) (MAC, bool)
}

// NewStack creates a host stack and attaches it to the network.
func NewStack(n *Network, mac MAC, ip IPAddr) (*Stack, error) {
	s := newStack(n, mac, ip)
	if err := n.Attach(mac, s); err != nil {
		return nil, err
	}
	if err := n.RegisterIP(ip, mac); err != nil {
		return nil, err
	}
	return s, nil
}

// NewDetachedStack creates a stack that is NOT attached to the network: it
// neither receives frames nor owns an ARP binding. Gage's local service
// manager interposes one of these behind each RPN's NIC, feeding it remapped
// frames via Receive and intercepting its output via SetEgress.
func NewDetachedStack(n *Network, mac MAC, ip IPAddr) *Stack {
	return newStack(n, mac, ip)
}

func newStack(n *Network, mac MAC, ip IPAddr) *Stack {
	return &Stack{
		netw:          n,
		mac:           mac,
		ip:            ip,
		listeners:     make(map[uint16]func(*Conn)),
		conns:         make(map[connKey]*Conn),
		nextEphemeral: 49152,
		nextISN:       1000,
		arp:           n.Resolve,
	}
}

var _ Receiver = (*Stack)(nil)

// MAC returns the stack's link-layer address.
func (s *Stack) MAC() MAC { return s.mac }

// IP returns the stack's network-layer address.
func (s *Stack) IP() IPAddr { return s.ip }

// SetEgress diverts all transmitted frames through fn (the LSM hook).
func (s *Stack) SetEgress(fn func(Packet)) { s.egress = fn }

// transmit sends a frame via the egress hook or straight to the network.
func (s *Stack) transmit(pkt Packet) {
	if s.egress != nil {
		s.egress(pkt)
		return
	}
	s.netw.Send(pkt)
}

// Listen registers an accept callback for a port. The callback fires when a
// new connection completes its handshake.
func (s *Stack) Listen(port uint16, accept func(*Conn)) error {
	if _, dup := s.listeners[port]; dup {
		return fmt.Errorf("netsim: port %d already listening on %s", port, s.ip)
	}
	s.listeners[port] = accept
	return nil
}

// Connect opens a connection to the remote address. The returned Conn fires
// OnEstablished when the handshake completes.
func (s *Stack) Connect(remoteIP IPAddr, remotePort uint16) (*Conn, error) {
	mac, ok := s.arp(remoteIP)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, remoteIP)
	}
	port := s.allocPort()
	c := &Conn{
		stack:      s,
		state:      stateSynSent,
		localPort:  port,
		remoteIP:   remoteIP,
		remotePort: remotePort,
		remoteMAC:  mac,
		sndNxt:     s.allocISN(),
	}
	s.conns[connKey{ip: remoteIP, port: remotePort, local: port}] = c
	seq := c.sndNxt
	c.sndNxt++
	c.sendTracked(Packet{
		SrcMAC:  s.mac,
		DstMAC:  mac,
		SrcIP:   s.ip,
		DstIP:   remoteIP,
		SrcPort: port,
		DstPort: remotePort,
		Seq:     seq,
		Flags:   SYN,
	})
	return c, nil
}

func (s *Stack) allocPort() uint16 {
	p := s.nextEphemeral
	s.nextEphemeral++
	if s.nextEphemeral == 0 {
		s.nextEphemeral = 49152
	}
	return p
}

func (s *Stack) allocISN() uint32 {
	isn := s.nextISN
	s.nextISN += 64007 // odd stride walks the space
	return isn
}

// Receive implements Receiver: the TCP-lite input state machine.
func (s *Stack) Receive(pkt Packet) {
	key := connKey{ip: pkt.SrcIP, port: pkt.SrcPort, local: pkt.DstPort}
	if c, ok := s.conns[key]; ok {
		s.deliver(c, pkt)
		return
	}
	// New connection? Only a bare SYN to a listening port opens one.
	if pkt.Flags.Has(SYN) && !pkt.Flags.Has(ACK) {
		accept, ok := s.listeners[pkt.DstPort]
		if !ok {
			return // no listener: silently dropped (no RST in TCP-lite)
		}
		c := &Conn{
			stack:      s,
			state:      stateSynRcvd,
			localPort:  pkt.DstPort,
			remoteIP:   pkt.SrcIP,
			remotePort: pkt.SrcPort,
			remoteMAC:  pkt.SrcMAC,
			sndNxt:     s.allocISN(),
			rcvNxt:     pkt.Seq + 1,
		}
		s.conns[key] = c
		// Stash the accept callback to fire at establishment.
		onEst := c.OnEstablished
		c.OnEstablished = func(conn *Conn) {
			accept(conn)
			if onEst != nil {
				onEst(conn)
			}
		}
		seq := c.sndNxt
		c.sndNxt++
		c.sendTracked(Packet{
			SrcMAC:  s.mac,
			DstMAC:  c.remoteMAC,
			SrcIP:   s.ip,
			DstIP:   c.remoteIP,
			SrcPort: c.localPort,
			DstPort: c.remotePort,
			Seq:     seq,
			Ack:     c.rcvNxt,
			Flags:   SYN | ACK,
		})
	}
}

// deliver advances an existing connection's state machine.
func (s *Stack) deliver(c *Conn, pkt Packet) {
	if pkt.Flags.Has(ACK) {
		c.processAck(pkt.Ack)
	}
	switch c.state {
	case stateSynSent:
		if pkt.Flags.Has(SYN | ACK) {
			c.rcvNxt = pkt.Seq + 1
			c.remoteMAC = pkt.SrcMAC
			c.state = stateEstablished
			s.transmit(Packet{
				SrcMAC:  s.mac,
				DstMAC:  c.remoteMAC,
				SrcIP:   s.ip,
				DstIP:   c.remoteIP,
				SrcPort: c.localPort,
				DstPort: c.remotePort,
				Seq:     c.sndNxt,
				Ack:     c.rcvNxt,
				Flags:   ACK,
			})
			if c.OnEstablished != nil {
				c.OnEstablished(c)
			}
		}
	case stateSynRcvd:
		if pkt.Flags.Has(ACK) {
			c.state = stateEstablished
			if c.OnEstablished != nil {
				c.OnEstablished(c)
			}
		}
		// A data-bearing first ACK falls through to payload handling.
		fallthrough
	case stateEstablished:
		c.handleSegment(pkt)
	case stateFinWait:
		// Only ACK bookkeeping (done above) matters; the peer's data was
		// all delivered before we closed in this half-duplex usage.
	case stateClosed:
		// Late packets to a closed connection are dropped.
	}
}

// handleSegment processes an in-sequence-checked data/FIN segment on an
// established connection: in-order payload is delivered, an in-order FIN
// closes, anything else (duplicate or beyond a gap) is dropped with the
// cumulative ACK re-asserted so the Go-Back-N sender recovers.
func (c *Conn) handleSegment(pkt Packet) {
	inOrderData := len(pkt.Payload) > 0 && pkt.Seq == c.rcvNxt
	if inOrderData {
		c.rcvNxt += uint32(len(pkt.Payload))
	}
	finSeq := pkt.Seq + uint32(len(pkt.Payload))
	inOrderFIN := pkt.Flags.Has(FIN) && finSeq == c.rcvNxt
	if inOrderFIN {
		c.rcvNxt++
	}
	if len(pkt.Payload) == 0 && !pkt.Flags.Has(FIN) {
		return // pure ACK: window bookkeeping happened in deliver
	}
	// Acknowledge whatever the receive window now covers — this re-asserts
	// the cumulative ACK for duplicates and out-of-order segments too.
	c.stack.transmit(Packet{
		SrcMAC:  c.stack.mac,
		DstMAC:  c.remoteMAC,
		SrcIP:   c.stack.ip,
		DstIP:   c.remoteIP,
		SrcPort: c.localPort,
		DstPort: c.remotePort,
		Seq:     c.sndNxt,
		Ack:     c.rcvNxt,
		Flags:   ACK,
	})
	if inOrderData && c.OnData != nil {
		c.OnData(c, pkt.Payload)
	}
	if inOrderFIN {
		c.state = stateClosed
		delete(c.stack.conns, connKey{ip: c.remoteIP, port: c.remotePort, local: c.localPort})
		if c.OnClose != nil {
			c.OnClose(c)
		}
	}
}

// ErrNoRoute is returned when an IP cannot be resolved to a MAC.
var ErrNoRoute = errors.New("netsim: no route")
