package netsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gage/internal/core"
	"gage/internal/faults"
	"gage/internal/vclock"
)

func testNet(t *testing.T) (*vclock.Engine, *Network) {
	t.Helper()
	e := vclock.NewEngine(time.Time{})
	return e, NewNetwork(e, 50*time.Microsecond)
}

func mustStack(t *testing.T, n *Network, mac MAC, ip IPAddr) *Stack {
	t.Helper()
	s, err := NewStack(n, mac, ip)
	if err != nil {
		t.Fatalf("NewStack(%d, %s): %v", mac, ip, err)
	}
	return s
}

func run(t *testing.T, e *vclock.Engine, d time.Duration) {
	t.Helper()
	if err := e.RunFor(d); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
}

func TestFlagsString(t *testing.T) {
	tests := []struct {
		give Flags
		want string
	}{
		{0, "-"},
		{SYN, "S"},
		{SYN | ACK, "SA"},
		{FIN | ACK, "AF"},
		{ACK | PSH, "AP"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Flags(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestIPAddrString(t *testing.T) {
	if got := (IPAddr{10, 1, 2, 3}).String(); got != "10.1.2.3" {
		t.Errorf("String = %q", got)
	}
}

func TestFlowReverse(t *testing.T) {
	p := Packet{SrcIP: IPAddr{1}, DstIP: IPAddr{2}, SrcPort: 10, DstPort: 20}
	f := p.Flow()
	r := f.Reverse()
	if r.SrcIP != f.DstIP || r.DstIP != f.SrcIP || r.SrcPort != f.DstPort || r.DstPort != f.SrcPort {
		t.Errorf("Reverse() = %+v", r)
	}
	if r.Reverse() != f {
		t.Error("double reverse must be identity")
	}
}

func TestAttachRejectsDuplicateMAC(t *testing.T) {
	_, n := testNet(t)
	mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	if _, err := NewStack(n, 1, IPAddr{10, 0, 0, 2}); err == nil {
		t.Error("duplicate MAC must be rejected")
	}
}

func TestRegisterIPConflict(t *testing.T) {
	_, n := testNet(t)
	mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	if err := n.RegisterIP(IPAddr{10, 0, 0, 1}, 2); err == nil {
		t.Error("IP bound to a different MAC must be rejected")
	}
	// Re-registering the same binding is fine.
	if err := n.RegisterIP(IPAddr{10, 0, 0, 1}, 1); err != nil {
		t.Errorf("idempotent RegisterIP: %v", err)
	}
}

func TestHandshakeAndDataBothWays(t *testing.T) {
	e, n := testNet(t)
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	server := mustStack(t, n, 2, IPAddr{10, 0, 0, 2})

	var serverConn *Conn
	var serverGot bytes.Buffer
	if err := server.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnData = func(_ *Conn, data []byte) {
			serverGot.Write(data)
			c.Send([]byte("response"))
		}
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}

	var clientGot bytes.Buffer
	established := false
	conn, err := client.Connect(server.IP(), 80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	conn.OnEstablished = func(c *Conn) {
		established = true
		c.Send([]byte("GET / HTTP/1.0\r\n\r\n"))
	}
	conn.OnData = func(_ *Conn, data []byte) { clientGot.Write(data) }

	run(t, e, 10*time.Millisecond)

	if !established || !conn.Established() {
		t.Fatal("client connection must establish")
	}
	if serverConn == nil || !serverConn.Established() {
		t.Fatal("server connection must establish")
	}
	if got := serverGot.String(); got != "GET / HTTP/1.0\r\n\r\n" {
		t.Errorf("server received %q", got)
	}
	if got := clientGot.String(); got != "response" {
		t.Errorf("client received %q", got)
	}
}

func TestLargeTransferSegmentsToMSS(t *testing.T) {
	e, n := testNet(t)
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	server := mustStack(t, n, 2, IPAddr{10, 0, 0, 2})

	payload := bytes.Repeat([]byte("x"), 4*MSS+123)
	if err := server.Listen(80, func(c *Conn) {
		c.OnData = func(_ *Conn, _ []byte) {}
		c.Send(payload)
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}

	var got bytes.Buffer
	var dataPackets int
	n.Tap(func(p Packet) {
		if len(p.Payload) > 0 && p.SrcPort == 80 {
			dataPackets++
			if len(p.Payload) > MSS {
				t.Errorf("segment of %d bytes exceeds MSS", len(p.Payload))
			}
		}
	})
	conn, err := client.Connect(server.IP(), 80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	conn.OnData = func(_ *Conn, data []byte) { got.Write(data) }

	run(t, e, 100*time.Millisecond)

	if !bytes.Equal(got.Bytes(), payload) {
		t.Errorf("received %d bytes, want %d intact", got.Len(), len(payload))
	}
	if dataPackets != 5 {
		t.Errorf("data segments = %d, want 5", dataPackets)
	}
}

func TestSequenceNumbersAdvanceCorrectly(t *testing.T) {
	e, n := testNet(t)
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	server := mustStack(t, n, 2, IPAddr{10, 0, 0, 2})

	if err := server.Listen(80, func(c *Conn) { c.OnData = func(*Conn, []byte) {} }); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	conn, err := client.Connect(server.IP(), 80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	isnPlus1 := conn.SndNxt() // Connect consumed the SYN's sequence slot
	conn.OnEstablished = func(c *Conn) { c.Send(make([]byte, 100)) }
	run(t, e, 10*time.Millisecond)
	if got := conn.SndNxt(); got != isnPlus1+100 {
		t.Errorf("SndNxt = %d, want %d (ISN+1+payload)", got, isnPlus1+100)
	}
}

func TestConnectUnknownIP(t *testing.T) {
	_, n := testNet(t)
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	if _, err := client.Connect(IPAddr{10, 9, 9, 9}, 80); err == nil {
		t.Error("connecting to an unresolvable IP must fail")
	}
}

func TestSynToNonListeningPortIgnored(t *testing.T) {
	e, n := testNet(t)
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	mustStack(t, n, 2, IPAddr{10, 0, 0, 2})

	conn, err := client.Connect(IPAddr{10, 0, 0, 2}, 9999)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	run(t, e, 10*time.Millisecond)
	if conn.Established() {
		t.Error("connection to closed port must not establish")
	}
}

func TestListenRejectsDuplicatePort(t *testing.T) {
	_, n := testNet(t)
	server := mustStack(t, n, 2, IPAddr{10, 0, 0, 2})
	if err := server.Listen(80, func(*Conn) {}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if err := server.Listen(80, func(*Conn) {}); err == nil {
		t.Error("duplicate Listen must fail")
	}
}

func TestCloseSendsFINAndNotifiesPeer(t *testing.T) {
	e, n := testNet(t)
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	server := mustStack(t, n, 2, IPAddr{10, 0, 0, 2})

	var serverClosed bool
	if err := server.Listen(80, func(c *Conn) {
		c.OnClose = func(*Conn) { serverClosed = true }
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	conn, err := client.Connect(server.IP(), 80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	conn.OnEstablished = func(c *Conn) { c.Close() }
	run(t, e, 10*time.Millisecond)
	if !conn.Closed() {
		t.Error("client conn must be closed")
	}
	if !serverClosed {
		t.Error("server must observe the FIN")
	}
}

func TestDuplicateDataReAcked(t *testing.T) {
	e, n := testNet(t)
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	server := mustStack(t, n, 2, IPAddr{10, 0, 0, 2})

	deliveries := 0
	if err := server.Listen(80, func(c *Conn) {
		c.OnData = func(*Conn, []byte) { deliveries++ }
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	conn, err := client.Connect(server.IP(), 80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	var firstData Packet
	haveCopy := false
	n.Tap(func(p Packet) {
		if len(p.Payload) > 0 && !haveCopy {
			firstData = p
			haveCopy = true
		}
	})
	conn.OnEstablished = func(c *Conn) { c.Send([]byte("hello")) }
	run(t, e, 5*time.Millisecond)
	if deliveries != 1 {
		t.Fatalf("deliveries = %d, want 1", deliveries)
	}
	// Replay the captured data packet: it must be re-ACKed, not re-delivered.
	acks := 0
	n.Tap(func(p Packet) {
		if p.Flags.Has(ACK) && len(p.Payload) == 0 && p.SrcPort == 80 {
			acks++
		}
	})
	n.Send(firstData)
	run(t, e, 5*time.Millisecond)
	if deliveries != 1 {
		t.Errorf("deliveries after replay = %d, want 1 (no duplicate delivery)", deliveries)
	}
	if acks == 0 {
		t.Error("duplicate segment must be re-ACKed")
	}
}

func TestNetworkLatencyApplied(t *testing.T) {
	e := vclock.NewEngine(time.Time{})
	n := NewNetwork(e, 3*time.Millisecond)
	var deliveredAt time.Time
	recv := receiverFunc(func(Packet) { deliveredAt = e.Now() })
	if err := n.Attach(7, recv); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	n.Send(Packet{DstMAC: 7})
	if err := e.RunFor(10 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if want := (time.Time{}).Add(3 * time.Millisecond); !deliveredAt.Equal(want) {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestSendToUnknownMACDropped(t *testing.T) {
	e, n := testNet(t)
	n.Send(Packet{DstMAC: 42})
	run(t, e, time.Millisecond) // must not panic or deliver
}

type receiverFunc func(Packet)

func (f receiverFunc) Receive(p Packet) { f(p) }

func TestOutOfOrderFINDoesNotSkipData(t *testing.T) {
	// Regression: a FIN arriving ahead of a lost data segment must NOT
	// advance the receive window past the gap — the receiver re-asserts its
	// cumulative ACK and the sender retransmits the missing data first.
	e, n := testNet(t)
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	server := mustStack(t, n, 2, IPAddr{10, 0, 0, 2})

	if err := server.Listen(80, func(c *Conn) {
		c.OnData = func(*Conn, []byte) {}
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	conn, err := client.Connect(server.IP(), 80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	run(t, e, time.Millisecond)
	if !conn.Established() {
		t.Fatal("not established")
	}
	base := conn.SndNxt()
	// Forge the peer's view: deliver a FIN whose sequence presumes 100
	// bytes the server never received.
	var serverConn *Conn
	for _, c := range server.conns {
		serverConn = c
	}
	if serverConn == nil {
		t.Fatal("no server conn")
	}
	before := serverConn.RcvNxt()
	server.Receive(Packet{
		SrcMAC: 1, DstMAC: 2,
		SrcIP: client.IP(), DstIP: server.IP(),
		SrcPort: conn.LocalPort(), DstPort: 80,
		Seq: base + 100, Ack: serverConn.SndNxt(), Flags: FIN | ACK,
	})
	if serverConn.Closed() {
		t.Error("out-of-order FIN must not close the connection")
	}
	if got := serverConn.RcvNxt(); got != before {
		t.Errorf("rcvNxt advanced to %d past a gap, want %d", got, before)
	}
}

func TestFinWaitRetransmitsUnackedData(t *testing.T) {
	// A sender that closes right after sending keeps retransmitting until
	// the receiver has everything (no data stranded by Close).
	e := vclock.NewEngine(time.Time{})
	n := NewNetwork(e, 50*time.Microsecond)
	// Drop exactly the server's first response segment, nothing else.
	first := true
	n.SetLoss(1.0, 1)
	n.LossExempt = func(p Packet) bool {
		if len(p.Payload) > 0 && p.SrcPort == 80 && first {
			first = false
			return false // lose this one
		}
		return true
	}
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	server := mustStack(t, n, 2, IPAddr{10, 0, 0, 2})
	if err := server.Listen(80, func(c *Conn) {
		c.OnData = func(conn *Conn, _ []byte) {
			conn.Send([]byte("full-response"))
			conn.Close()
		}
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var got bytes.Buffer
	conn, err := client.Connect(server.IP(), 80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	conn.OnEstablished = func(c *Conn) { c.Send([]byte("go")) }
	conn.OnData = func(_ *Conn, data []byte) { got.Write(data) }
	run(t, e, 5*time.Second)
	if got.String() != "full-response" {
		t.Errorf("received %q, want the retransmitted response", got.String())
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	e := vclock.NewEngine(time.Time{})
	n := NewNetwork(e, 50*time.Microsecond)
	n.SetLoss(0.15, 42) // drop 15% of frames
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	server := mustStack(t, n, 2, IPAddr{10, 0, 0, 2})

	payload := bytes.Repeat([]byte("y"), 6*MSS)
	if err := server.Listen(80, func(c *Conn) {
		c.OnData = func(conn *Conn, _ []byte) { conn.Send(payload) }
	}); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var got bytes.Buffer
	conn, err := client.Connect(server.IP(), 80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	conn.OnEstablished = func(c *Conn) { c.Send([]byte("go")) }
	conn.OnData = func(_ *Conn, data []byte) { got.Write(data) }
	run(t, e, 30*time.Second) // plenty of RTOs

	if !bytes.Equal(got.Bytes(), payload) {
		t.Errorf("received %d bytes under loss, want %d intact", got.Len(), len(payload))
	}
	if n.Dropped() == 0 {
		t.Error("the lossy network should actually have dropped frames")
	}
}

func TestGiveUpAfterMaxRetries(t *testing.T) {
	e := vclock.NewEngine(time.Time{})
	n := NewNetwork(e, 50*time.Microsecond)
	n.SetLoss(1.0, 1) // everything is lost
	client := mustStack(t, n, 1, IPAddr{10, 0, 0, 1})
	mustStack(t, n, 2, IPAddr{10, 0, 0, 2})

	closed := false
	conn, err := client.Connect(IPAddr{10, 0, 0, 2}, 80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	conn.OnClose = func(*Conn) { closed = true }
	run(t, e, time.Duration(MaxRetries+2)*RTO)
	if !conn.Closed() || !closed {
		t.Error("a connection that cannot get through must give up and close")
	}
}

// Property: any set of random-length messages over concurrent connections
// between two hosts arrives complete, intact and in order per connection.
func TestConcurrentTransfersIntactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := vclock.NewEngine(time.Time{})
		n := NewNetwork(e, 10*time.Microsecond)
		client, err := NewStack(n, 1, IPAddr{10, 0, 0, 1})
		if err != nil {
			return false
		}
		server, err := NewStack(n, 2, IPAddr{10, 0, 0, 2})
		if err != nil {
			return false
		}
		if err := server.Listen(80, func(c *Conn) {
			var total int
			c.OnData = func(conn *Conn, data []byte) {
				total += len(data)
				// Echo length back when the sentinel arrives.
				if data[len(data)-1] == 0xFF {
					reply := make([]byte, total)
					conn.Send(reply)
				}
			}
		}); err != nil {
			return false
		}
		nConns := 1 + rng.Intn(4)
		sent := make([]int, nConns)
		got := make([]int, nConns)
		for i := 0; i < nConns; i++ {
			i := i
			size := 1 + rng.Intn(3*MSS)
			sent[i] = size
			conn, err := client.Connect(server.IP(), 80)
			if err != nil {
				return false
			}
			conn.OnEstablished = func(c *Conn) {
				msg := make([]byte, size)
				msg[size-1] = 0xFF
				c.Send(msg)
			}
			conn.OnData = func(_ *Conn, data []byte) { got[i] += len(data) }
		}
		if err := e.RunFor(time.Second); err != nil {
			return false
		}
		for i := range sent {
			if got[i] != sent[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// recvFunc adapts a function to the Receiver interface for raw-frame tests.
type recvFunc func(Packet)

func (f recvFunc) Receive(p Packet) { f(p) }

func TestNetworkFaultHookDropsAndDelays(t *testing.T) {
	e, n := testNet(t) // 50µs segment latency
	var arrivals []time.Duration
	if err := n.Attach(2, recvFunc(func(Packet) {
		arrivals = append(arrivals, e.Now().Sub(time.Time{}))
	})); err != nil {
		t.Fatalf("Attach: %v", err)
	}

	// Scripted fate: frames sent inside [10ms, 20ms) are dropped; frames
	// sent inside [20ms, 30ms) are held an extra 1ms.
	start := e.Now()
	n.SetFault(func(Packet) (bool, time.Duration) {
		off := n.Now().Sub(start)
		switch {
		case off >= 10*time.Millisecond && off < 20*time.Millisecond:
			return true, 0
		case off >= 20*time.Millisecond && off < 30*time.Millisecond:
			return false, time.Millisecond
		}
		return false, 0
	})

	for _, at := range []time.Duration{5, 15, 25, 35} {
		at := at * time.Millisecond
		n.After(at, func() { n.Send(Packet{SrcMAC: 1, DstMAC: 2}) })
	}
	run(t, e, 50*time.Millisecond)

	want := []time.Duration{
		5*time.Millisecond + 50*time.Microsecond,    // clean
		25*time.Millisecond + 1050*time.Microsecond, // held 1ms extra
		35*time.Millisecond + 50*time.Microsecond,   // hook windows over
	}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals = %v, want %v (frame at 15ms dropped)", arrivals, want)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Errorf("arrival %d = %v, want %v", i, arrivals[i], want[i])
		}
	}
	if n.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", n.Dropped())
	}

	// Removing the hook restores clean delivery.
	n.SetFault(nil)
	n.Send(Packet{SrcMAC: 1, DstMAC: 2})
	run(t, e, time.Millisecond)
	if len(arrivals) != 4 {
		t.Errorf("delivery after SetFault(nil): got %d arrivals, want 4", len(arrivals))
	}
}

func TestNetworkFaultHookDrivenByInjector(t *testing.T) {
	e, n := testNet(t)
	delivered := 0
	if err := n.Attach(2, recvFunc(func(Packet) { delivered++ })); err != nil {
		t.Fatalf("Attach: %v", err)
	}

	// The simulator's fault vocabulary plugs straight into the frame-fate
	// hook: a LinkDegrade blackout window on "node 1" (here: the host at
	// MAC 1) eats its outbound frames for 10ms.
	in, err := faults.NewInjector(faults.Plan{Seed: 3, Events: []faults.Event{
		{At: 10 * time.Millisecond, Kind: faults.LinkDegrade, Node: 1,
			Until: 20 * time.Millisecond, Loss: 1},
	}})
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	macToNode := map[MAC]core.NodeID{1: 1}
	start := e.Now()
	n.SetFault(func(p Packet) (bool, time.Duration) {
		return in.DropFrame(macToNode[p.SrcMAC], n.Now().Sub(start)), 0
	})

	// One frame per millisecond for 30ms: the 10 inside the window die.
	for i := 0; i < 30; i++ {
		at := time.Duration(i) * time.Millisecond
		n.After(at, func() { n.Send(Packet{SrcMAC: 1, DstMAC: 2}) })
	}
	run(t, e, 40*time.Millisecond)
	if delivered != 20 {
		t.Errorf("delivered = %d, want 20 (10 frames inside the blackout window dropped)", delivered)
	}
	if n.Dropped() != 10 {
		t.Errorf("Dropped = %d, want 10", n.Dropped())
	}
}
