package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"gage/internal/vclock"
)

// Receiver consumes frames delivered to a host's NIC.
type Receiver interface {
	// Receive handles one delivered frame. It runs inside the simulation
	// event loop and may send further packets.
	Receive(pkt Packet)
}

// Network is a single Ethernet segment: hosts attached to one learning
// switch, with a fixed per-hop latency, driven by a virtual-clock engine.
type Network struct {
	engine  *vclock.Engine
	latency time.Duration

	ports map[MAC]Receiver
	arp   map[IPAddr]MAC

	// loss, when configured, drops each frame independently with the given
	// probability using a seeded generator (deterministic runs).
	lossRate float64
	lossRNG  *rand.Rand
	dropped  uint64

	// LossExempt, when set, shields matching frames from the configured
	// loss (e.g. intra-cluster control channels).
	LossExempt func(Packet) bool

	// fault, when set, decides every frame's fate before the random-loss
	// stage: drop it outright or hold it for extra latency. It is the
	// segment-level attachment point for a scripted fault plan (link
	// blackouts, degradation windows) and must be deterministic for
	// replayable runs.
	fault func(Packet) (drop bool, extra time.Duration)

	// Taps observe every delivered frame (for tests and traces).
	taps []func(Packet)

	// freeDeliveries recycles in-flight frame carriers so Send allocates
	// nothing in steady state.
	freeDeliveries []*delivery
}

// NewNetwork creates an empty network on the engine with the given per-hop
// delivery latency.
func NewNetwork(engine *vclock.Engine, latency time.Duration) *Network {
	return &Network{
		engine:  engine,
		latency: latency,
		ports:   make(map[MAC]Receiver),
		arp:     make(map[IPAddr]MAC),
	}
}

// Attach connects a receiver to the switch at the given MAC.
func (n *Network) Attach(mac MAC, r Receiver) error {
	if _, dup := n.ports[mac]; dup {
		return fmt.Errorf("netsim: MAC %d already attached", mac)
	}
	n.ports[mac] = r
	return nil
}

// Tap registers an observer called for every delivered frame.
func (n *Network) Tap(fn func(Packet)) {
	n.taps = append(n.taps, fn)
}

// RegisterIP publishes an IP→MAC binding (the segment's ARP view). The same
// IP may not be claimed by two MACs; the cluster IP belongs to the RDN.
func (n *Network) RegisterIP(ip IPAddr, mac MAC) error {
	if prev, dup := n.arp[ip]; dup && prev != mac {
		return fmt.Errorf("netsim: IP %s already bound to MAC %d", ip, prev)
	}
	n.arp[ip] = mac
	return nil
}

// Resolve looks up the MAC bound to an IP.
func (n *Network) Resolve(ip IPAddr) (MAC, bool) {
	mac, ok := n.arp[ip]
	return mac, ok
}

// Now returns the current simulation time.
func (n *Network) Now() time.Time { return n.engine.Now() }

// After schedules fn on the simulation clock.
func (n *Network) After(d time.Duration, fn func()) { n.engine.After(d, fn) }

// Timer schedules fn on the simulation clock and returns a cancellable
// handle (retransmission timers).
func (n *Network) Timer(d time.Duration, fn func()) vclock.Timer {
	return n.engine.After(d, fn)
}

// SetLoss configures random frame loss: each frame is dropped independently
// with probability rate, using a deterministic seeded generator.
func (n *Network) SetLoss(rate float64, seed int64) {
	n.lossRate = rate
	n.lossRNG = rand.New(rand.NewSource(seed))
}

// SetFault installs a per-frame fate function consulted on every Send: a
// frame it drops counts toward Dropped; a frame it holds is delivered after
// the segment latency plus the returned extra delay. Passing nil removes the
// hook. LossExempt does not shield frames from the fault hook — a scripted
// outage severs control channels too, which is exactly what fault drills
// need to exercise.
func (n *Network) SetFault(fn func(pkt Packet) (drop bool, extra time.Duration)) {
	n.fault = fn
}

// Dropped returns how many frames the configured loss has eaten.
func (n *Network) Dropped() uint64 { return n.dropped }

// Send transmits a frame: it is delivered to the port matching its
// destination MAC after the network latency, unless the configured loss
// drops it. Unknown destinations are dropped (the switch here learns at
// Attach time, so every valid MAC is known; a drop indicates a misaddressed
// frame, which is silently lost just as on a real segment).
func (n *Network) Send(pkt Packet) {
	dst, ok := n.ports[pkt.DstMAC]
	if !ok {
		return
	}
	var extra time.Duration
	if n.fault != nil {
		drop, hold := n.fault(pkt)
		if drop {
			n.dropped++
			return
		}
		extra = hold
	}
	if n.lossRNG != nil && (n.LossExempt == nil || !n.LossExempt(pkt)) &&
		n.lossRNG.Float64() < n.lossRate {
		n.dropped++
		return
	}
	// Deliveries ride a pooled carrier through AfterArg instead of a fresh
	// closure per frame: the simulator sends one frame per simulated packet,
	// so this is the segment's hottest allocation site.
	var d *delivery
	if k := len(n.freeDeliveries); k > 0 {
		d = n.freeDeliveries[k-1]
		n.freeDeliveries[k-1] = nil
		n.freeDeliveries = n.freeDeliveries[:k-1]
	} else {
		d = &delivery{n: n}
	}
	d.dst, d.pkt = dst, pkt
	n.engine.AfterArg(n.latency+extra, deliverFrame, d)
}

// delivery carries one in-flight frame; nodes are recycled via the network's
// free list.
type delivery struct {
	n   *Network
	dst Receiver
	pkt Packet
}

// deliverFrame is the shared delivery callback (top-level so scheduling it
// never allocates a closure).
func deliverFrame(arg any) {
	d := arg.(*delivery)
	n, dst, pkt := d.n, d.dst, d.pkt
	d.dst, d.pkt = nil, Packet{}
	n.freeDeliveries = append(n.freeDeliveries, d)
	for _, tap := range n.taps {
		tap(pkt)
	}
	dst.Receive(pkt)
}
