// Package conntrack implements the RDN's connection table (§3.3): a map from
// the TCP 4-tuple of a spliced connection to the back-end RPN servicing it.
// After a URL request is dispatched, every subsequent client packet on that
// connection is bridged at Layer 2 straight to its RPN via this table.
package conntrack

import (
	"fmt"
	"sync"
	"time"
)

// FourTuple is the connection key: source/destination IP and port as they
// appear in the packet header arriving at the RDN.
type FourTuple struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
}

// String formats the tuple for diagnostics.
func (ft FourTuple) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d",
		ft.SrcIP[0], ft.SrcIP[1], ft.SrcIP[2], ft.SrcIP[3], ft.SrcPort,
		ft.DstIP[0], ft.DstIP[1], ft.DstIP[2], ft.DstIP[3], ft.DstPort)
}

// entry pairs a binding with its creation time for expiry.
type entry[V any] struct {
	val     V
	created time.Time
}

// Table maps connection 4-tuples to a caller-defined binding (typically the
// RPN's identity and MAC address). It is safe for concurrent use: the live
// dispatcher consults it from multiple connection goroutines.
type Table[V any] struct {
	mu sync.RWMutex
	m  map[FourTuple]entry[V]
}

// New returns an empty connection table.
func New[V any]() *Table[V] {
	return &Table[V]{m: make(map[FourTuple]entry[V])}
}

// Insert records (or replaces) the binding for a connection.
func (t *Table[V]) Insert(ft FourTuple, v V, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[ft] = entry[V]{val: v, created: now}
}

// Lookup returns the binding for a connection, if present.
func (t *Table[V]) Lookup(ft FourTuple) (V, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.m[ft]
	return e.val, ok
}

// Delete removes a connection's binding, reporting whether it was present.
func (t *Table[V]) Delete(ft FourTuple) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.m[ft]
	delete(t.m, ft)
	return ok
}

// Len returns the number of tracked connections.
func (t *Table[V]) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// Expire removes entries created before the cutoff and returns how many were
// removed. The RDN runs this periodically so abandoned half-connections do
// not leak table space.
func (t *Table[V]) Expire(cutoff time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int
	for ft, e := range t.m {
		if e.created.Before(cutoff) {
			delete(t.m, ft)
			n++
		}
	}
	return n
}

// Range calls fn for each entry until fn returns false. The table lock is
// held for the duration; fn must not call back into the table.
func (t *Table[V]) Range(fn func(FourTuple, V) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for ft, e := range t.m {
		if !fn(ft, e.val) {
			return
		}
	}
}
