package conntrack

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

type binding struct {
	RPN int
	MAC uint64
}

func tuple(srcLast byte, srcPort uint16) FourTuple {
	return FourTuple{
		SrcIP:   [4]byte{10, 0, 0, srcLast},
		DstIP:   [4]byte{192, 168, 1, 1},
		SrcPort: srcPort,
		DstPort: 80,
	}
}

func TestInsertLookupDelete(t *testing.T) {
	tbl := New[binding]()
	ft := tuple(1, 12345)
	if _, ok := tbl.Lookup(ft); ok {
		t.Error("empty table must miss")
	}
	tbl.Insert(ft, binding{RPN: 3, MAC: 0xabc}, time.Time{})
	got, ok := tbl.Lookup(ft)
	if !ok || got != (binding{RPN: 3, MAC: 0xabc}) {
		t.Errorf("Lookup = (%+v, %v), want RPN 3", got, ok)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
	if !tbl.Delete(ft) {
		t.Error("Delete must report presence")
	}
	if tbl.Delete(ft) {
		t.Error("second Delete must report absence")
	}
	if _, ok := tbl.Lookup(ft); ok {
		t.Error("deleted entry must miss")
	}
}

func TestInsertReplaces(t *testing.T) {
	tbl := New[binding]()
	ft := tuple(1, 1)
	tbl.Insert(ft, binding{RPN: 1}, time.Time{})
	tbl.Insert(ft, binding{RPN: 2}, time.Time{})
	got, _ := tbl.Lookup(ft)
	if got.RPN != 2 {
		t.Errorf("replaced binding RPN = %d, want 2", got.RPN)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len after replace = %d, want 1", tbl.Len())
	}
}

func TestDistinctTuplesAreDistinctKeys(t *testing.T) {
	tbl := New[int]()
	base := tuple(1, 1)
	variants := []FourTuple{
		{SrcIP: [4]byte{10, 0, 0, 2}, DstIP: base.DstIP, SrcPort: 1, DstPort: 80},
		{SrcIP: base.SrcIP, DstIP: [4]byte{192, 168, 1, 2}, SrcPort: 1, DstPort: 80},
		{SrcIP: base.SrcIP, DstIP: base.DstIP, SrcPort: 2, DstPort: 80},
		{SrcIP: base.SrcIP, DstIP: base.DstIP, SrcPort: 1, DstPort: 81},
	}
	tbl.Insert(base, 0, time.Time{})
	for i, v := range variants {
		tbl.Insert(v, i+1, time.Time{})
	}
	if tbl.Len() != 5 {
		t.Fatalf("Len = %d, want 5 distinct keys", tbl.Len())
	}
	for i, v := range variants {
		if got, _ := tbl.Lookup(v); got != i+1 {
			t.Errorf("variant %d = %d, want %d", i, got, i+1)
		}
	}
}

func TestExpire(t *testing.T) {
	tbl := New[int]()
	t0 := time.Time{}
	tbl.Insert(tuple(1, 1), 1, t0)
	tbl.Insert(tuple(2, 2), 2, t0.Add(10*time.Second))
	tbl.Insert(tuple(3, 3), 3, t0.Add(20*time.Second))
	if n := tbl.Expire(t0.Add(15 * time.Second)); n != 2 {
		t.Errorf("Expire removed %d, want 2", n)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len after expire = %d, want 1", tbl.Len())
	}
	if _, ok := tbl.Lookup(tuple(3, 3)); !ok {
		t.Error("fresh entry must survive expiry")
	}
	if n := tbl.Expire(t0); n != 0 {
		t.Errorf("expire with old cutoff removed %d, want 0", n)
	}
}

func TestRange(t *testing.T) {
	tbl := New[int]()
	for i := byte(0); i < 5; i++ {
		tbl.Insert(tuple(i, uint16(i)), int(i), time.Time{})
	}
	seen := make(map[int]bool)
	tbl.Range(func(_ FourTuple, v int) bool {
		seen[v] = true
		return true
	})
	if len(seen) != 5 {
		t.Errorf("Range visited %d entries, want 5", len(seen))
	}
	var visited int
	tbl.Range(func(_ FourTuple, _ int) bool {
		visited++
		return false
	})
	if visited != 1 {
		t.Errorf("early-stop Range visited %d, want 1", visited)
	}
}

func TestFourTupleString(t *testing.T) {
	ft := tuple(9, 1234)
	want := "10.0.0.9:1234->192.168.1.1:80"
	if got := ft.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: a table behaves exactly like a map under random insert/delete.
func TestTableMatchesMapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New[int]()
		ref := make(map[FourTuple]int)
		for i := 0; i < 200; i++ {
			ft := tuple(byte(rng.Intn(8)), uint16(rng.Intn(8)))
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Int()
				tbl.Insert(ft, v, time.Time{})
				ref[ft] = v
			case 2:
				gotDel := tbl.Delete(ft)
				_, refHad := ref[ft]
				delete(ref, ft)
				if gotDel != refHad {
					return false
				}
			}
		}
		if tbl.Len() != len(ref) {
			return false
		}
		got := make(map[FourTuple]int, tbl.Len())
		tbl.Range(func(ft FourTuple, v int) bool {
			got[ft] = v
			return true
		})
		return reflect.DeepEqual(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	tbl := New[int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ft := tuple(byte(g), uint16(i%16))
				tbl.Insert(ft, i, time.Time{})
				tbl.Lookup(ft)
				if i%7 == 0 {
					tbl.Delete(ft)
				}
			}
		}()
	}
	wg.Wait()
	// The table must end with at most 8×16 live entries and stay consistent.
	if tbl.Len() > 8*16 {
		t.Errorf("Len = %d, want <= %d", tbl.Len(), 8*16)
	}
}
