// Package loadgen is an open-loop constant-rate HTTP load generator in the
// style of Banga & Druschel's "Measuring the Capacity of a Web Server" — the
// client model the paper uses (§4): requests are issued at a fixed rate
// regardless of completions, so an overloaded server cannot slow the offered
// load down.
package loadgen

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gage/internal/httpwire"
)

// Target is the request the generator repeats.
type Target struct {
	// Addr is the dispatcher's host:port.
	Addr string
	// Host is the virtual host (the classification key).
	Host string
	// Path is the request path; a "*" is replaced with a random page size,
	// exercising distinct URLs.
	Path string
}

// Options paces the run.
type Options struct {
	// Rate is requests per second.
	Rate float64
	// Duration is how long to generate.
	Duration time.Duration
	// MaxInFlight bounds concurrent requests (default 512); arrivals beyond
	// it are counted as shed, keeping the generator itself open-loop.
	MaxInFlight int
	// Timeout bounds each request (default 10 s).
	Timeout time.Duration
	// Seed randomizes "*" path substitution.
	Seed int64
}

// Result summarizes a run.
type Result struct {
	// Sent is how many requests were issued (excluding shed ones).
	Sent int
	// Shed is how many arrivals were dropped at the in-flight cap.
	Shed int
	// StatusCounts maps HTTP status to count; transport failures are -1.
	StatusCounts map[int]int
	// AchievedOK is successful (HTTP 200) responses per second.
	AchievedOK float64
	// MeanLatency and P95Latency cover successful responses.
	MeanLatency time.Duration
	P95Latency  time.Duration
}

// OK returns the number of HTTP-200 responses.
func (r Result) OK() int { return r.StatusCounts[200] }

// Run drives the target at the configured rate and blocks until all issued
// requests resolve.
func Run(target Target, opts Options) (Result, error) {
	if opts.Rate <= 0 {
		return Result{}, errors.New("loadgen: rate must be positive")
	}
	if opts.Duration <= 0 {
		return Result{}, errors.New("loadgen: duration must be positive")
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 512
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var (
		wg       sync.WaitGroup
		inFlight atomic.Int64
		shed     atomic.Int64

		mu        sync.Mutex
		statuses  = make(map[int]int)
		latencies []float64
	)
	record := func(code int, latency time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		statuses[code]++
		if code == 200 {
			latencies = append(latencies, latency.Seconds())
		}
	}

	gap := time.Duration(float64(time.Second) / opts.Rate)
	n := int(opts.Duration / gap)
	sent := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		// Open loop: wait until this arrival's scheduled instant.
		sleepUntil := start.Add(time.Duration(i+1) * gap)
		if d := time.Until(sleepUntil); d > 0 {
			time.Sleep(d)
		}
		if inFlight.Load() >= int64(opts.MaxInFlight) {
			shed.Add(1)
			continue
		}
		sent++
		path := target.Path
		if path == "" {
			path = "/index.html"
		}
		if path == "*" {
			path = fmt.Sprintf("/static/%d.html", 512+rng.Intn(8192))
		}
		inFlight.Add(1)
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			defer inFlight.Add(-1)
			issued := time.Now()
			code := fetch(target.Addr, target.Host, path, opts.Timeout)
			record(code, time.Since(issued))
		}(path)
	}
	wg.Wait()

	res := Result{
		Sent:         sent,
		Shed:         int(shed.Load()),
		StatusCounts: statuses,
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		res.AchievedOK = float64(statuses[200]) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		res.MeanLatency = time.Duration(mean(latencies) * float64(time.Second))
		res.P95Latency = time.Duration(percentile(latencies, 95) * float64(time.Second))
	}
	return res, nil
}

// fetch performs one HTTP/1.0 request and returns the status code, or -1 on
// transport failure.
func fetch(addr, host, path string, timeout time.Duration) int {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return -1
	}
	defer conn.Close()
	// The deadline bounds the whole exchange.
	_ = conn.SetDeadline(time.Now().Add(timeout))
	req := &httpwire.Request{Method: "GET", Target: path, Proto: "HTTP/1.0", Host: host}
	if err := req.Write(conn); err != nil {
		return -1
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return -1
	}
	return resp.StatusCode
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	idx := int(p / 100 * float64(len(cp)-1))
	return cp[idx]
}
