package loadgen

import (
	"io"
	"log"
	"net"
	"testing"
	"time"

	"gage/internal/backend"
	"gage/internal/dispatch"
	"gage/internal/qos"
)

// liveCluster starts one backend plus a dispatcher and returns its address.
func liveCluster(t *testing.T, subs []qos.Subscriber) string {
	t.Helper()
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	be := backend.New(backend.Config{Node: 1})
	go func() { _ = be.Serve(bln) }()
	t.Cleanup(func() { _ = be.Close() })

	srv, err := dispatch.New(dispatch.Config{
		Subscribers: subs,
		Backends:    []dispatch.Backend{{ID: 1, Addr: bln.Addr().String()}},
		AcctCycle:   50 * time.Millisecond,
		Logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(dln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return dln.Addr().String()
}

func TestRunAgainstLiveCluster(t *testing.T) {
	addr := liveCluster(t, []qos.Subscriber{
		{ID: "site1", Hosts: []string{"site1.example"}, Reservation: 500},
	})
	res, err := Run(
		Target{Addr: addr, Host: "site1.example", Path: "/static/1024.html"},
		Options{Rate: 100, Duration: time.Second},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Sent < 90 || res.Sent > 100 {
		t.Errorf("sent = %d, want ≈100", res.Sent)
	}
	if ok := res.OK(); ok < res.Sent*9/10 {
		t.Errorf("ok = %d of %d, want ≥90%%", ok, res.Sent)
	}
	if res.MeanLatency <= 0 || res.P95Latency < res.MeanLatency/2 {
		t.Errorf("latencies = mean %v p95 %v", res.MeanLatency, res.P95Latency)
	}
	if res.Shed != 0 {
		t.Errorf("shed = %d, want 0 at this trivial rate", res.Shed)
	}
}

func TestRandomPaths(t *testing.T) {
	addr := liveCluster(t, []qos.Subscriber{
		{ID: "site1", Hosts: []string{"site1.example"}, Reservation: 500},
	})
	res, err := Run(
		Target{Addr: addr, Host: "site1.example", Path: "*"},
		Options{Rate: 50, Duration: 500 * time.Millisecond, Seed: 7},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.OK() == 0 {
		t.Errorf("no successful responses: %+v", res.StatusCounts)
	}
}

func TestLiveQoSIsolation(t *testing.T) {
	// A live miniature of Table 1 on real sockets: vip inside its
	// reservation stays error-free while hog floods a tiny queue.
	addr := liveCluster(t, []qos.Subscriber{
		{ID: "vip", Hosts: []string{"vip.example"}, Reservation: 400},
		{ID: "hog", Hosts: []string{"hog.example"}, Reservation: 5, QueueLimit: 4},
	})
	type out struct {
		res Result
		err error
	}
	vipCh := make(chan out, 1)
	hogCh := make(chan out, 1)
	go func() {
		r, err := Run(Target{Addr: addr, Host: "vip.example", Path: "/static/512.html"},
			Options{Rate: 80, Duration: 2 * time.Second})
		vipCh <- out{r, err}
	}()
	go func() {
		r, err := Run(Target{Addr: addr, Host: "hog.example", Path: "/static/512.html"},
			Options{Rate: 300, Duration: 2 * time.Second, Timeout: 3 * time.Second})
		hogCh <- out{r, err}
	}()
	vip, hog := <-vipCh, <-hogCh
	if vip.err != nil || hog.err != nil {
		t.Fatalf("run errors: %v / %v", vip.err, hog.err)
	}
	if ok := vip.res.OK(); ok < vip.res.Sent*9/10 {
		t.Errorf("vip ok = %d of %d, want ≥90%% despite hog flood (statuses %v)",
			ok, vip.res.Sent, vip.res.StatusCounts)
	}
	if hog.res.StatusCounts[503] == 0 {
		t.Errorf("hog must see 503s at 300 req/s against a 5-GRPS reservation: %v",
			hog.res.StatusCounts)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Target{}, Options{Rate: 0, Duration: time.Second}); err == nil {
		t.Error("zero rate must be rejected")
	}
	if _, err := Run(Target{}, Options{Rate: 1}); err == nil {
		t.Error("zero duration must be rejected")
	}
}

func TestTransportFailuresCounted(t *testing.T) {
	// Nothing listens on this address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead := ln.Addr().String()
	ln.Close()
	res, err := Run(Target{Addr: dead, Host: "h", Path: "/"},
		Options{Rate: 50, Duration: 200 * time.Millisecond, Timeout: time.Second})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.StatusCounts[-1] == 0 {
		t.Errorf("transport failures not counted: %v", res.StatusCounts)
	}
}
