package flightrec

import (
	"bytes"
	"testing"
	"time"

	"gage/internal/qos"
)

func TestRecorderStampsRDNAndDrainsAnnotations(t *testing.T) {
	var tick time.Duration
	var spill bytes.Buffer
	r := NewRecorder(Config{RingSize: 8, Spill: &spill, Now: func() time.Duration { return tick }})
	r.SetRDN(2)

	r.Annotate(TierEvent{Kind: "takeover", Group: "tierA", From: 1, To: 2, Epoch: 2})
	r.Annotate(TierEvent{Kind: "fence", Group: "tierA", From: 1, Epoch: 1})
	tick = 10 * time.Millisecond
	slot := r.Begin()
	fill(slot, CycleRecord{Subs: []SubRecord{{ID: "s"}}})
	r.Commit()
	tick = 20 * time.Millisecond
	r.Begin()
	r.Commit()

	recs := r.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("recorded %d cycles, want 2", len(recs))
	}
	if recs[0].RDN != 2 || recs[1].RDN != 2 {
		t.Fatalf("RDN stamps = %d,%d, want 2,2", recs[0].RDN, recs[1].RDN)
	}
	if len(recs[0].Events) != 2 {
		t.Fatalf("first record carries %d events, want 2", len(recs[0].Events))
	}
	if ev := recs[0].Events[0]; ev.Kind != "takeover" || ev.Group != "tierA" || ev.Epoch != 2 {
		t.Fatalf("event = %+v", ev)
	}
	// Annotations drain once: the second record is clean.
	if len(recs[1].Events) != 0 {
		t.Fatalf("second record carries %d events, want 0", len(recs[1].Events))
	}

	// Events survive the JSONL round trip.
	parsed, err := ReadLog(&spill)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(parsed) != 2 || len(parsed[0].Events) != 2 || parsed[0].RDN != 2 {
		t.Fatalf("spilled log lost tier context: %+v", parsed)
	}
}

// TestAuditorMergedMultiRDNLog feeds the auditor an interleaved two-RDN
// stream: each RDN's records advance its own timeline, subscribers live on
// exactly one RDN, and tier events from both streams land in the report in
// ingest order.
func TestAuditorMergedMultiRDNLog(t *testing.T) {
	a := NewAuditor(nil, AuditorConfig{Window: 100 * time.Millisecond})
	step := 10 * time.Millisecond
	for i := 1; i <= 20; i++ {
		at := time.Duration(i) * step
		for rdn := 1; rdn <= 2; rdn++ {
			rec := CycleRecord{
				Seq: uint64(i),
				At:  at,
				RDN: rdn,
				Subs: []SubRecord{{
					ID:          qos.SubscriberID([]string{"", "alpha", "beta"}[rdn]),
					Reservation: 100,
					Usage:       usageOf(1),
					QueueLen:    1,
				}},
			}
			if i == 5 && rdn == 2 {
				rec.Events = []TierEvent{{Kind: "takeover", Group: "g", From: 1, To: 2, Epoch: 2}}
			}
			a.Ingest(rec)
		}
	}
	rep := a.Report()
	if rep.Records != 40 {
		t.Fatalf("ingested %d records, want 40 (both streams kept)", rep.Records)
	}
	if len(rep.Subs) != 2 {
		t.Fatalf("report covers %d subscribers, want 2", len(rep.Subs))
	}
	for _, sr := range rep.Subs {
		if !sr.Active {
			t.Fatalf("subscriber %s inactive; both streams ran to the end", sr.ID)
		}
		if sr.SlowRatio <= 0 {
			t.Fatalf("subscriber %s: slow ratio %v, want positive", sr.ID, sr.SlowRatio)
		}
	}
	if len(rep.Events) != 1 {
		t.Fatalf("report carries %d events, want 1", len(rep.Events))
	}
	ev := rep.Events[0]
	if ev.RDN != 2 || ev.At != 5*step || ev.Event.Kind != "takeover" {
		t.Fatalf("event record = %+v", ev)
	}

	// Per-RDN ordering: a stale record for RDN 1 is dropped even though RDN
	// 2's stream has advanced past it.
	before := a.Report().Records
	a.Ingest(CycleRecord{At: 15 * step, RDN: 1, Subs: []SubRecord{{ID: "alpha", Reservation: 100}}})
	if got := a.Report().Records; got != before {
		t.Fatalf("stale per-RDN record ingested (records %d -> %d)", before, got)
	}
	// But a fresh record for RDN 1 at an offset RDN 2 already passed is fine.
	a.Ingest(CycleRecord{At: 21 * step, RDN: 1, Subs: []SubRecord{{ID: "alpha", Reservation: 100, Usage: usageOf(1)}}})
	if got := a.Report().Records; got != before+1 {
		t.Fatalf("fresh per-RDN record dropped (records %d -> %d)", before, got)
	}
}

// TestAuditorLegacySingleStreamOrdering pins the degenerate behaviour: with
// every record stamped RDN 0, the per-RDN guard is exactly the old global
// append-only check.
func TestAuditorLegacySingleStreamOrdering(t *testing.T) {
	a := NewAuditor(nil, AuditorConfig{})
	a.Ingest(CycleRecord{At: 10 * time.Millisecond, Subs: []SubRecord{{ID: "s", Reservation: 10}}})
	a.Ingest(CycleRecord{At: 20 * time.Millisecond, Subs: []SubRecord{{ID: "s", Reservation: 10}}})
	a.Ingest(CycleRecord{At: 20 * time.Millisecond, Subs: []SubRecord{{ID: "s", Reservation: 10}}})
	a.Ingest(CycleRecord{At: 15 * time.Millisecond, Subs: []SubRecord{{ID: "s", Reservation: 10}}})
	if rep := a.Report(); rep.Records != 2 {
		t.Fatalf("records = %d, want 2 (duplicate and rewind dropped)", rep.Records)
	}
}
