package flightrec

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"gage/internal/qos"
)

// fill copies one synthetic record into an open ring slot.
func fill(slot *CycleRecord, rec CycleRecord) {
	slot.Subs = append(slot.Subs, rec.Subs...)
	slot.Nodes = append(slot.Nodes, rec.Nodes...)
}

// usageOf builds a usage vector worth the given number of generic units.
func usageOf(units float64) qos.Vector {
	return qos.GenericCost().Scale(units)
}

func TestRecorderRingWrap(t *testing.T) {
	var tick time.Duration
	r := NewRecorder(Config{RingSize: 4, Now: func() time.Duration { return tick }})
	for i := 0; i < 10; i++ {
		tick = time.Duration(i+1) * 10 * time.Millisecond
		slot := r.Begin()
		fill(slot, CycleRecord{Subs: []SubRecord{{ID: "s", QueueLen: i}}})
		r.Commit()
	}
	if got := r.Seq(); got != 10 {
		t.Fatalf("Seq = %d, want 10", got)
	}
	recent := r.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent(0) returned %d records, want 4 (ring size)", len(recent))
	}
	for i, rec := range recent {
		wantSeq := uint64(6 + i)
		if rec.Seq != wantSeq {
			t.Errorf("recent[%d].Seq = %d, want %d", i, rec.Seq, wantSeq)
		}
		if rec.Subs[0].QueueLen != int(wantSeq) {
			t.Errorf("recent[%d] queueLen = %d, want %d", i, rec.Subs[0].QueueLen, wantSeq)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].Seq != 8 {
		t.Fatalf("Recent(2) = %d records starting at seq %d, want 2 from 8", len(got), got[0].Seq)
	}

	recs, next, dropped := r.Since(0)
	if dropped != 6 {
		t.Errorf("Since(0) dropped = %d, want 6", dropped)
	}
	if len(recs) != 4 || next != 10 {
		t.Errorf("Since(0) = %d records, next %d; want 4, 10", len(recs), next)
	}
	if recs, next, dropped = r.Since(next); len(recs) != 0 || dropped != 0 || next != 10 {
		t.Errorf("Since(10) = %d records, next %d, dropped %d; want empty", len(recs), next, dropped)
	}

	// Mutating a returned copy must not touch the ring.
	recent[3].Subs[0].QueueLen = -1
	if again := r.Recent(1); again[0].Subs[0].QueueLen == -1 {
		t.Fatal("Recent returned a slice aliasing the ring")
	}
}

func TestSpillRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var tick time.Duration
	r := NewRecorder(Config{RingSize: 2, Spill: &buf, Now: func() time.Duration { return tick }})
	want := []CycleRecord{
		{Seq: 0, At: 10 * time.Millisecond, Subs: []SubRecord{{
			ID: "site1", Reservation: 250,
			Balance:   qos.Vector{CPUTime: time.Millisecond, DiskTime: 2 * time.Millisecond, NetBytes: 300},
			Predicted: qos.GenericCost(),
			Credited:  qos.GRPS(250).PerCycle(10 * time.Millisecond),
			Usage:     usageOf(2.5),
			QueueLen:  3, Reserved: 2, Spare: 1, Completed: 4, Dropped: 7,
		}}, Nodes: []NodeRecord{{
			ID: 1, Outstanding: usageOf(1), Drained: usageOf(0.5), Weight: 0.75,
		}}},
		{Seq: 1, At: 20 * time.Millisecond, Subs: []SubRecord{{ID: "site2"}}},
		{Seq: 2, At: 30 * time.Millisecond}, // empty cycle: no subs, no nodes
	}
	for _, rec := range want {
		tick = rec.At
		slot := r.Begin()
		fill(slot, rec)
		r.Commit()
	}
	if err := r.SpillErr(); err != nil {
		t.Fatalf("SpillErr: %v", err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("ReadLog returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		// JSON round-trips nil and empty slices both to nil.
		if len(w.Subs) == 0 {
			w.Subs = g.Subs
		}
		if len(w.Nodes) == 0 {
			w.Nodes = g.Nodes
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("record %d round-trip mismatch:\ngot  %+v\nwant %+v", i, g, w)
		}
	}

	// WriteLog produces the same format ReadLog parses.
	var buf2 bytes.Buffer
	if err := WriteLog(&buf2, got); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	again, err := ReadLog(&buf2)
	if err != nil {
		t.Fatalf("ReadLog(WriteLog): %v", err)
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatal("WriteLog/ReadLog round trip diverged")
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(bytes.NewBufferString("{\"seq\":0}\nnot json\n")); err == nil {
		t.Fatal("ReadLog accepted a malformed line")
	}
}

// synth builds a stream of cycle records for one subscriber at a 10 ms cycle:
// each entry in units is one cycle's delivered units, with backlog marking
// standing demand.
func synth(res qos.GRPS, units []float64, backlog []bool) []CycleRecord {
	const cycle = 10 * time.Millisecond
	recs := make([]CycleRecord, len(units))
	for i := range units {
		qlen := 0
		if backlog[i] {
			qlen = 5
		}
		recs[i] = CycleRecord{
			Seq: uint64(i),
			At:  time.Duration(i+1) * cycle,
			Subs: []SubRecord{{
				ID:          "sub",
				Reservation: res,
				Usage:       usageOf(units[i]),
				QueueLen:    qlen,
			}},
		}
	}
	return recs
}

func TestAuditorDetectsViolation(t *testing.T) {
	// 100 GRPS at a 10 ms cycle = 1 unit per cycle. Healthy for 1 s, starved
	// with standing backlog for 1 s, healthy again for 1 s.
	const n = 300
	units := make([]float64, n)
	backlog := make([]bool, n)
	for i := range units {
		switch {
		case i < 100:
			units[i] = 1
		case i < 200:
			units[i] = 0
			backlog[i] = true
		default:
			units[i] = 1
		}
	}
	rep := Replay(synth(100, units, backlog), AuditorConfig{
		Window:     time.Second,
		FastWindow: 200 * time.Millisecond,
	})
	if rep.Records != n {
		t.Fatalf("Records = %d, want %d", rep.Records, n)
	}
	sub, ok := rep.Sub("sub")
	if !ok {
		t.Fatal("no report row for sub")
	}
	if sub.Violations != 1 {
		t.Fatalf("violations = %d, want exactly 1 span; spans: %+v", sub.Violations, sub.Spans)
	}
	sp := sub.Spans[0]
	if sp.Open {
		t.Fatalf("span still open at end of healthy tail: %+v", sp)
	}
	// The outage spans (1s, 2s]; detection lags by the fast window and
	// demand gate, recovery by the windows refilling.
	if sp.Start < time.Second || sp.Start > 1500*time.Millisecond {
		t.Errorf("span start %v, want shortly after 1s", sp.Start)
	}
	if sp.End < 2*time.Second || sp.End > 3*time.Second {
		t.Errorf("span end %v, want shortly after 2s", sp.End)
	}
	if sub.Violating {
		t.Error("still marked violating after recovery")
	}
}

func TestAuditorDemandGate(t *testing.T) {
	// Delivering only 30% of the reservation but with no backlog: an idle
	// subscriber, not a violated one.
	const n = 300
	units := make([]float64, n)
	backlog := make([]bool, n)
	for i := range units {
		units[i] = 0.3
	}
	rep := Replay(synth(100, units, backlog), AuditorConfig{
		Window:     time.Second,
		FastWindow: 200 * time.Millisecond,
	})
	sub, _ := rep.Sub("sub")
	if sub.Violations != 0 {
		t.Fatalf("idle subscriber reported %d violations: %+v", sub.Violations, sub.Spans)
	}
	if sub.SlowRatio > 0.35 || sub.SlowRatio < 0.25 {
		t.Errorf("slow ratio = %.3f, want ≈0.3", sub.SlowRatio)
	}
}

func TestAuditorZeroReservation(t *testing.T) {
	const n = 150
	units := make([]float64, n)
	backlog := make([]bool, n)
	for i := range units {
		backlog[i] = true // permanently starved best-effort subscriber
	}
	rep := Replay(synth(0, units, backlog), AuditorConfig{
		Window:     time.Second,
		FastWindow: 200 * time.Millisecond,
	})
	sub, _ := rep.Sub("sub")
	if sub.Violations != 0 {
		t.Fatalf("zero-reservation subscriber reported %d violations", sub.Violations)
	}
}

func TestAuditorRatiosAndDeviation(t *testing.T) {
	// Steady 1 unit/cycle against 100 GRPS: ratios 1.0, deviation 0.
	const n = 400
	units := make([]float64, n)
	backlog := make([]bool, n)
	for i := range units {
		units[i] = 1
	}
	rep := Replay(synth(100, units, backlog), AuditorConfig{})
	sub, _ := rep.Sub("sub")
	if math.Abs(sub.SlowRatio-1) > 0.01 || math.Abs(sub.FastRatio-1) > 0.01 {
		t.Errorf("ratios = fast %.4f slow %.4f, want 1.0", sub.FastRatio, sub.SlowRatio)
	}
	if math.Abs(sub.Delivered-100) > 1 {
		t.Errorf("delivered = %.2f units/s, want ≈100", sub.Delivered)
	}
	if !sub.DeviationOK {
		t.Fatal("deviation not computed over a 4 s stream")
	}
	if sub.Deviation > 0.01 || sub.WorstDeviation > 0.01 {
		t.Errorf("deviation = %.4f (worst %.4f), want ≈0", sub.Deviation, sub.WorstDeviation)
	}
	if !sub.Active {
		t.Error("subscriber marked inactive in a live stream")
	}
}

func TestAuditorSkipExcludesWarmup(t *testing.T) {
	// Garbage (zero delivery, full backlog) during the first second, steady
	// delivery afterwards: with Skip=1s the warmup never reaches the
	// windows, so no violation and a clean deviation.
	const n = 400
	units := make([]float64, n)
	backlog := make([]bool, n)
	for i := range units {
		if i < 100 {
			backlog[i] = true
		} else {
			units[i] = 1
		}
	}
	rep := Replay(synth(100, units, backlog), AuditorConfig{
		Window:     time.Second,
		FastWindow: 200 * time.Millisecond,
		Skip:       time.Second,
	})
	sub, _ := rep.Sub("sub")
	if sub.Violations != 0 {
		t.Fatalf("warmup leaked into the audit: %d violations %+v", sub.Violations, sub.Spans)
	}
	if !sub.DeviationOK || sub.Deviation > 0.01 {
		t.Errorf("deviation = %.4f (ok=%v), want ≈0", sub.Deviation, sub.DeviationOK)
	}
	// Skip excludes records strictly before the offset; the record at
	// exactly 1s (the 100th) is retained, so 301 of 400 survive.
	if rep.Records != 301 {
		t.Errorf("Records = %d, want 301 (skip dropped 99)", rep.Records)
	}
}

func TestAuditorSyncCountsRingDrops(t *testing.T) {
	var tick time.Duration
	r := NewRecorder(Config{RingSize: 8, Now: func() time.Duration { return tick }})
	a := NewAuditor(r, AuditorConfig{})
	commit := func(k int) {
		for i := 0; i < k; i++ {
			tick += 10 * time.Millisecond
			slot := r.Begin()
			slot.Subs = append(slot.Subs, SubRecord{ID: "s", Reservation: 10, Usage: usageOf(0.1)})
			r.Commit()
		}
	}
	commit(4)
	a.Sync()
	if rep := a.Report(); rep.Records != 4 || rep.Dropped != 0 {
		t.Fatalf("after first sync: records %d dropped %d, want 4/0", rep.Records, rep.Dropped)
	}
	commit(20) // laps the ring: 12 records lost to the auditor
	a.Sync()
	rep := a.Report()
	if rep.Dropped != 12 {
		t.Errorf("Dropped = %d, want 12", rep.Dropped)
	}
	if rep.Records != 12 {
		t.Errorf("Records = %d, want 12 (4 + the 8 retained)", rep.Records)
	}
	a.Sync() // idempotent when nothing new committed
	if again := a.Report(); again.Records != rep.Records || again.Dropped != rep.Dropped {
		t.Error("redundant Sync changed the report")
	}
}

func TestAuditorSpareShare(t *testing.T) {
	const cycle = 10 * time.Millisecond
	var recs []CycleRecord
	for i := 0; i < 200; i++ {
		recs = append(recs, CycleRecord{
			Seq: uint64(i),
			At:  time.Duration(i+1) * cycle,
			Subs: []SubRecord{
				{ID: "a", Reservation: 100, Usage: usageOf(1), Reserved: 1, Spare: 3},
				{ID: "b", Reservation: 50, Usage: usageOf(0.5), Reserved: 1, Spare: 1},
			},
		})
	}
	rep := Replay(recs, AuditorConfig{})
	a, _ := rep.Sub("a")
	b, _ := rep.Sub("b")
	if math.Abs(a.SpareShare-0.75) > 1e-9 || math.Abs(b.SpareShare-0.25) > 1e-9 {
		t.Errorf("spare shares = %.3f / %.3f, want 0.75 / 0.25", a.SpareShare, b.SpareShare)
	}
	if a.Spare != 600 || b.Spare != 200 {
		t.Errorf("spare counts = %d / %d, want 600 / 200", a.Spare, b.Spare)
	}
}
