package flightrec

import (
	"math"
	"sort"
	"sync"
	"time"

	"gage/internal/metrics"
	"gage/internal/obs"
	"gage/internal/qos"
)

// Auditor defaults.
const (
	// DefaultRatio is the conformance threshold: delivered/reserved below
	// this in both burn-rate windows (with standing demand) is a violation.
	DefaultRatio = 0.9
	// DefaultInterval is the deviation-statistic averaging interval, the
	// paper's Figure-3 setting.
	DefaultInterval = time.Second
	// DefaultDemandFraction is the minimum fraction of fast-window cycles
	// that must end with a standing backlog before low delivery counts as a
	// violation — an idle subscriber is not a violated one.
	DefaultDemandFraction = 0.5
	// DefaultExemplarsPerSpan is how many recent sampled trace IDs a
	// violation span captures for attribution.
	DefaultExemplarsPerSpan = 4
)

// AuditorConfig tunes a conformance auditor.
type AuditorConfig struct {
	// Window is the slow sliding window. Zero or negative means unbounded —
	// the whole stream, the right setting for offline log audits. (The live
	// dispatcher installs its own default instead; see dispatch.Config.)
	Window time.Duration
	// FastWindow is the fast burn-rate window; zero derives Window/10.
	// Violations require both windows below Ratio: the fast window catches
	// the onset quickly, the slow window keeps one bad cycle from flapping.
	FastWindow time.Duration
	// Interval is the deviation-statistic averaging interval (default 1 s).
	Interval time.Duration
	// Ratio is the conformance threshold (default 0.9).
	Ratio float64
	// DemandFraction gates violations on demand (default 0.5): at least this
	// fraction of fast-window cycles must end with a non-empty queue.
	DemandFraction float64
	// Skip ignores records before this offset — warmup exclusion, matching
	// the simulator's measurement window.
	Skip time.Duration
	// Units converts usage vectors to generic units (default GenericUnits).
	Units func(qos.Vector) float64
	// ExemplarsPerSpan is how many of the subscriber's most recent sampled
	// trace IDs (fed via NoteExemplar) a violation span snapshots when it
	// opens (default DefaultExemplarsPerSpan; negative disables).
	ExemplarsPerSpan int
}

func (c AuditorConfig) withDefaults() AuditorConfig {
	if c.FastWindow <= 0 && c.Window > 0 {
		c.FastWindow = c.Window / 10
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Ratio <= 0 {
		c.Ratio = DefaultRatio
	}
	if c.DemandFraction <= 0 {
		c.DemandFraction = DefaultDemandFraction
	}
	if c.Units == nil {
		c.Units = qos.Vector.GenericUnits
	}
	if c.ExemplarsPerSpan == 0 {
		c.ExemplarsPerSpan = DefaultExemplarsPerSpan
	} else if c.ExemplarsPerSpan < 0 {
		c.ExemplarsPerSpan = 0
	}
	return c
}

// Span is one contiguous run of violating cycles, offsets in record time.
type Span struct {
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	// Open marks a violation still in progress at the last ingested record.
	Open bool `json:"open"`
	// Exemplars are the subscriber's most recent sampled trace IDs (hex, as
	// in the X-Gage-Trace header) at the moment the span opened — the
	// concrete requests `gagetrace explain` resolves against the event log.
	Exemplars []string `json:"exemplars,omitempty"`
}

// point is one cycle's contribution to a subscriber's sliding windows.
type point struct {
	at         time.Duration
	units      float64
	backlogged bool
	spare      int
	reserved   int
}

// subAudit is one subscriber's windowed conformance state.
type subAudit struct {
	id  qos.SubscriberID
	res qos.GRPS

	// pts[head:] is the slow window, pts[fastHead:] the fast window
	// (fastHead >= head always, since FastWindow <= Window).
	pts            []point
	head, fastHead int

	slowUnits      float64
	slowSpare      int
	slowReserved   int
	fastUnits      float64
	fastBacklogged int

	firstAt, lastAt time.Duration
	seen            bool

	violating  bool
	violations uint64
	spans      []Span
}

// Auditor consumes cycle records — incrementally from a Recorder via Sync,
// or pushed via Ingest — and maintains per-subscriber delivered-vs-reserved
// conformance over fast/slow sliding windows. It is safe for concurrent use.
type Auditor struct {
	mu  sync.Mutex
	cfg AuditorConfig
	rec *Recorder

	next    uint64 // next Recorder sequence to pull
	records uint64
	dropped uint64

	subs  map[qos.SubscriberID]*subAudit
	order []qos.SubscriberID

	// step is the observed record spacing (the scheduling cycle).
	step   time.Duration
	lastAt time.Duration
	// lastBy orders each front end's record stream independently: a merged
	// multi-RDN log interleaves N append-only streams, and a record is stale
	// only relative to its own RDN's stream. Single-RDN logs stamp RDN 0, so
	// the map degenerates to the old global ordering check.
	lastBy map[int]time.Duration
	// events accumulates tier control events in ingest order.
	events []TierEventRecord

	// exems holds each subscriber's last-N sampled trace IDs (NoteExemplar);
	// a violation span snapshots its subscriber's ring when it opens.
	exems map[qos.SubscriberID]*exemRing
	// bus, when set, receives a KindViolation event whenever a span opens or
	// closes, carrying the span's exemplars.
	bus *obs.Bus
}

// exemRing is one subscriber's fixed-size exemplar reservoir.
type exemRing struct {
	ids  []obs.TraceID
	next int
	n    int
}

func (e *exemRing) note(id obs.TraceID) {
	if len(e.ids) == 0 {
		return
	}
	e.ids[e.next] = id
	e.next = (e.next + 1) % len(e.ids)
	if e.n < len(e.ids) {
		e.n++
	}
}

// snapshot renders the retained IDs oldest-first — deterministic for a
// deterministic feed.
func (e *exemRing) snapshot() []string {
	if e == nil || e.n == 0 {
		return nil
	}
	out := make([]string, 0, e.n)
	for i := 0; i < e.n; i++ {
		out = append(out, e.ids[(e.next-e.n+i+len(e.ids))%len(e.ids)].String())
	}
	return out
}

// TierEventRecord is a tier event with its record context — when it was
// committed and by which front end.
type TierEventRecord struct {
	At    time.Duration `json:"at"`
	RDN   int           `json:"rdn,omitempty"`
	Event TierEvent     `json:"event"`
}

// NewAuditor builds an auditor. rec may be nil for push-mode (offline) use.
func NewAuditor(rec *Recorder, cfg AuditorConfig) *Auditor {
	return &Auditor{
		cfg:    cfg.withDefaults(),
		rec:    rec,
		subs:   make(map[qos.SubscriberID]*subAudit),
		lastBy: make(map[int]time.Duration),
		exems:  make(map[qos.SubscriberID]*exemRing),
	}
}

// SetBus mirrors violation span transitions onto the unified event bus.
func (a *Auditor) SetBus(b *obs.Bus) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bus = b
}

// NoteExemplar records a sampled trace ID for sub. The dispatcher calls it
// as traced requests settle; a violation span opening for sub snapshots the
// last ExemplarsPerSpan IDs, linking the guarantee miss to concrete
// requests. Steady-state cost is one ring write.
func (a *Auditor) NoteExemplar(sub qos.SubscriberID, id obs.TraceID) {
	if a == nil || id == 0 {
		return
	}
	a.mu.Lock()
	a.noteExemplarLocked(sub, id)
	a.mu.Unlock()
}

func (a *Auditor) noteExemplarLocked(sub qos.SubscriberID, id obs.TraceID) {
	if a.cfg.ExemplarsPerSpan <= 0 {
		return
	}
	e := a.exems[sub]
	if e == nil {
		e = &exemRing{ids: make([]obs.TraceID, a.cfg.ExemplarsPerSpan)}
		a.exems[sub] = e
	}
	e.note(id)
}

// Sync pulls every record committed since the last Sync from the recorder.
// The auditor is pull-based — there is no background goroutine; callers
// (scrape handlers, tests) sync right before reading a Report.
func (a *Auditor) Sync() {
	if a.rec == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	recs, next, dropped := a.rec.Since(a.next)
	a.next = next
	a.dropped += dropped
	for i := range recs {
		a.ingestLocked(&recs[i])
	}
}

// Ingest pushes one record — the offline replay path.
func (a *Auditor) Ingest(rec CycleRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ingestLocked(&rec)
}

func (a *Auditor) ingestLocked(rec *CycleRecord) {
	if rec.At < a.cfg.Skip {
		return
	}
	if last, seen := a.lastBy[rec.RDN]; seen {
		if rec.At <= last {
			return // out-of-order or duplicate; each RDN's stream is append-only
		}
		a.step = rec.At - last
	}
	a.lastBy[rec.RDN] = rec.At
	if rec.At > a.lastAt {
		a.lastAt = rec.At
	}
	a.records++
	for _, ev := range rec.Events {
		a.events = append(a.events, TierEventRecord{At: rec.At, RDN: rec.RDN, Event: ev})
	}
	for i := range rec.Subs {
		a.ingestSub(rec.At, &rec.Subs[i])
	}
}

func (a *Auditor) ingestSub(at time.Duration, sr *SubRecord) {
	s := a.subs[sr.ID]
	if s == nil {
		s = &subAudit{id: sr.ID}
		a.subs[sr.ID] = s
		a.order = append(a.order, sr.ID)
		sort.Slice(a.order, func(i, j int) bool { return a.order[i] < a.order[j] })
	}
	s.res = sr.Reservation
	p := point{
		at:         at,
		units:      a.cfg.Units(sr.Usage),
		backlogged: sr.QueueLen > 0,
		spare:      sr.Spare,
		reserved:   sr.Reserved,
	}
	if !s.seen {
		s.seen = true
		s.firstAt = at
	}
	s.lastAt = at
	s.pts = append(s.pts, p)
	s.slowUnits += p.units
	s.slowSpare += p.spare
	s.slowReserved += p.reserved
	s.fastUnits += p.units
	if p.backlogged {
		s.fastBacklogged++
	}
	if a.cfg.Window > 0 {
		for s.head < len(s.pts) && s.pts[s.head].at <= at-a.cfg.Window {
			q := &s.pts[s.head]
			s.slowUnits -= q.units
			s.slowSpare -= q.spare
			s.slowReserved -= q.reserved
			s.head++
		}
	}
	if a.cfg.FastWindow > 0 {
		for s.fastHead < len(s.pts) && s.pts[s.fastHead].at <= at-a.cfg.FastWindow {
			q := &s.pts[s.fastHead]
			s.fastUnits -= q.units
			if q.backlogged {
				s.fastBacklogged--
			}
			s.fastHead++
		}
		if s.fastHead < s.head {
			s.fastHead = s.head
		}
	}
	// Compact the consumed prefix once it dominates the slice.
	if s.head > 4096 && s.head*2 >= len(s.pts) {
		n := copy(s.pts, s.pts[s.head:])
		s.pts = s.pts[:n]
		s.fastHead -= s.head
		s.head = 0
	}
	a.evaluate(s, at)
}

// evaluate updates a subscriber's violation state after one ingested cycle.
func (a *Auditor) evaluate(s *subAudit, at time.Duration) {
	step := a.step
	// Armed only once the fast window has filled; a bounded fast window is
	// required for violation detection at all (an unbounded audit reports
	// ratios but never spans).
	armed := step > 0 && a.cfg.FastWindow > 0 && at-s.firstAt+step >= a.cfg.FastWindow
	violating := false
	if armed && s.res > 0 {
		fastCount := len(s.pts) - s.fastHead
		demand := fastCount > 0 &&
			float64(s.fastBacklogged) >= a.cfg.DemandFraction*float64(fastCount)
		fastRatio := a.ratioLocked(s.fastUnits, s.res, at+step-s.pts[s.fastHead].at)
		slowRatio := a.ratioLocked(s.slowUnits, s.res, at+step-s.pts[s.head].at)
		violating = demand && fastRatio < a.cfg.Ratio && slowRatio < a.cfg.Ratio
	}
	switch {
	case violating && !s.violating:
		s.violating = true
		s.violations++
		ex := a.exems[s.id].snapshot()
		s.spans = append(s.spans, Span{Start: at, End: at, Open: true, Exemplars: ex})
		// The bus stamps At itself (the moment the audit noticed); the
		// span's own Start/End keep the record-time edges. Pre-stamping
		// record time here would publish behind events already on the bus.
		a.bus.Publish(obs.Event{
			Kind: obs.KindViolation, Sub: string(s.id),
			Detail: "open", Exemplars: ex,
		})
	case violating:
		s.spans[len(s.spans)-1].End = at
	case s.violating:
		s.violating = false
		sp := &s.spans[len(s.spans)-1]
		sp.End = at
		sp.Open = false
		a.bus.Publish(obs.Event{
			Kind: obs.KindViolation, Sub: string(s.id), Detail: "close",
		})
	}
}

// ratioLocked is delivered/reserved over a span: units relative to what the
// reservation entitles across it.
func (a *Auditor) ratioLocked(units float64, res qos.GRPS, span time.Duration) float64 {
	if res <= 0 || span <= 0 {
		return 0
	}
	return units / (float64(res) * span.Seconds())
}

// SubReport is one subscriber's conformance view.
type SubReport struct {
	ID          qos.SubscriberID `json:"id"`
	Reservation qos.GRPS         `json:"res"`
	// Delivered is the slow-window delivered rate in generic units/sec.
	Delivered float64 `json:"delivered"`
	// FastRatio and SlowRatio are delivered/reserved over each burn-rate
	// window (0 when the reservation is zero).
	FastRatio float64 `json:"fastRatio"`
	SlowRatio float64 `json:"slowRatio"`
	// Deviation is the Figure-3 statistic (mean |rate−res|/res over
	// averaging intervals) across the report window, computed with
	// metrics.Series; DeviationOK is false when the window holds no
	// complete interval or the reservation is zero.
	Deviation   float64 `json:"deviation"`
	DeviationOK bool    `json:"deviationOk"`
	// WorstDeviation is the worst single interval's deviation.
	WorstDeviation float64 `json:"worstDeviation"`
	// Backlogged is the fraction of fast-window cycles ending with queued
	// requests — the demand gate's input.
	Backlogged float64 `json:"backlogged"`
	// SpareShare is this subscriber's fraction of all spare-round dispatches
	// in the slow window; Spare/Reserved are its window dispatch counts.
	SpareShare float64 `json:"spareShare"`
	Spare      int     `json:"spare"`
	Reserved   int     `json:"reserved"`
	// Violating marks an open violation; Violations counts spans opened.
	Violating  bool   `json:"violating"`
	Violations uint64 `json:"violations"`
	Spans      []Span `json:"spans,omitempty"`
	// Active is false when the subscriber stopped appearing in records
	// (removed at runtime); its report is frozen at its last cycle.
	Active bool `json:"active"`
}

// Report is the auditor's full conformance view.
type Report struct {
	// At is the last ingested record's offset; Records counts ingested
	// cycles, Dropped the ring records the auditor missed between Syncs.
	At      time.Duration `json:"at"`
	Records uint64        `json:"records"`
	Dropped uint64        `json:"dropped"`
	Subs    []SubReport   `json:"subs"`
	// Events are the tier control events seen in the stream, in ingest
	// order — the failover audit trail (takeover/handback/fence).
	Events []TierEventRecord `json:"events,omitempty"`
}

// Sub returns the report row for one subscriber.
func (r Report) Sub(id qos.SubscriberID) (SubReport, bool) {
	for _, s := range r.Subs {
		if s.ID == id {
			return s, true
		}
	}
	return SubReport{}, false
}

// Report assembles the current per-subscriber conformance state, subscribers
// sorted by ID. Callers pulling from a Recorder should Sync first.
func (a *Auditor) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := Report{At: a.lastAt, Records: a.records, Dropped: a.dropped,
		Events: append([]TierEventRecord(nil), a.events...)}
	totalSpare := 0
	for _, s := range a.subs {
		totalSpare += s.slowSpare
	}
	for _, id := range a.order {
		s := a.subs[id]
		sr := SubReport{
			ID:          s.id,
			Reservation: s.res,
			Spare:       s.slowSpare,
			Reserved:    s.slowReserved,
			Violating:   s.violating,
			Violations:  s.violations,
			Spans:       append([]Span(nil), s.spans...),
			Active:      a.lastAt-s.lastAt <= a.step,
		}
		if totalSpare > 0 {
			sr.SpareShare = float64(s.slowSpare) / float64(totalSpare)
		}
		step := a.step
		if retained := len(s.pts) - s.head; retained > 0 && step > 0 {
			slowSpan := s.lastAt + step - s.pts[s.head].at
			if slowSpan > 0 {
				sr.Delivered = s.slowUnits / slowSpan.Seconds()
			}
			sr.SlowRatio = a.ratioLocked(s.slowUnits, s.res, slowSpan)
			sr.FastRatio = a.ratioLocked(s.fastUnits, s.res, s.lastAt+step-s.pts[s.fastHead].at)
			if fastCount := len(s.pts) - s.fastHead; fastCount > 0 {
				sr.Backlogged = float64(s.fastBacklogged) / float64(fastCount)
			}
			// Deviation reuses the metrics.Series Figure-3 math over the
			// retained window: bins start at the warmup edge when the window
			// reaches back to it, so an offline audit of a simulator log
			// bins exactly like the simulator's own Observed series.
			if s.res > 0 {
				var ser metrics.Series
				for _, p := range s.pts[s.head:] {
					ser.Record(p.at, p.units)
				}
				from := s.pts[s.head].at - step
				if a.cfg.Skip > from {
					from = a.cfg.Skip
				}
				to := s.lastAt + step
				if d, err := ser.DeviationBetween(s.res, from, to, a.cfg.Interval); err == nil {
					sr.Deviation, sr.DeviationOK = d, true
				}
				worst := 0.0
				for _, r := range ser.IntervalRatesBetween(from, to, a.cfg.Interval) {
					if d := math.Abs(r-float64(s.res)) / float64(s.res); d > worst {
						worst = d
					}
				}
				sr.WorstDeviation = worst
			}
		}
		rep.Subs = append(rep.Subs, sr)
	}
	return rep
}

// Replay feeds a recorded cycle log through a fresh auditor and returns its
// final report — the offline path behind `gagetrace audit`.
func Replay(recs []CycleRecord, cfg AuditorConfig) Report {
	a := NewAuditor(nil, cfg)
	for i := range recs {
		a.ingestLocked(&recs[i]) // fresh private auditor: no locking needed
	}
	return a.Report()
}

// ReplayEvents is Replay with a merged unified-event log alongside: settled
// request spans feed the exemplar reservoirs in record-time order, so a
// violation span opened during the replay snapshots the same exemplar trace
// IDs a live auditor would have. recs and evs must each be sorted by At
// (MergeLogs order). The offline path behind `gagetrace explain`.
func ReplayEvents(recs []CycleRecord, evs []obs.Event, cfg AuditorConfig) Report {
	a := NewAuditor(nil, cfg)
	j := 0
	for i := range recs {
		for ; j < len(evs) && evs[j].At <= recs[i].At; j++ {
			ev := &evs[j]
			if ev.Kind == obs.KindSpan && ev.Stage == obs.StageSettle && ev.Sub != "" {
				a.noteExemplarLocked(qos.SubscriberID(ev.Sub), ev.Trace)
			}
		}
		a.ingestLocked(&recs[i]) // fresh private auditor: no locking needed
	}
	return a.Report()
}
