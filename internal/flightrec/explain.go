package flightrec

// Explain reconstructs the causal story behind one guarantee violation from
// a cycle log and a merged unified-event log: which span fired, which
// concrete requests (exemplars) were in flight as it opened, and what else
// the cluster was doing — faults, breaker trips, tier transitions, admin
// decisions — in and around the span's window. Everything is derived from
// two sorted logs, so the same logs always render the same story byte for
// byte; `gagetrace explain` is a thin wrapper over this.

import (
	"fmt"
	"strings"
	"time"

	"gage/internal/obs"
	"gage/internal/qos"
)

// DefaultExplainMargin is how far beyond a violation span's edges Explain
// looks for coinciding events: wide enough to catch the crash that caused
// the span and the recovery that closed it.
const DefaultExplainMargin = 2 * time.Second

// ExplainOptions selects the span and context window to narrate.
type ExplainOptions struct {
	// Span indexes the subscriber's violation spans (0 = first).
	Span int
	// Margin extends the coinciding-event window past the span's edges
	// (default DefaultExplainMargin).
	Margin time.Duration
}

// Explain renders the causal story of one subscriber's violation span.
// recs and evs must each be sorted by At (obs.MergeLogs order for evs);
// cfg is the same auditor configuration an offline audit would use.
func Explain(recs []CycleRecord, evs []obs.Event, sub qos.SubscriberID, opts ExplainOptions, cfg AuditorConfig) (string, error) {
	if opts.Margin <= 0 {
		opts.Margin = DefaultExplainMargin
	}
	rep := ReplayEvents(recs, evs, cfg)
	sr, ok := rep.Sub(sub)
	if !ok {
		return "", fmt.Errorf("flightrec: subscriber %q not in the cycle log", sub)
	}
	if len(sr.Spans) == 0 {
		return fmt.Sprintf("subscriber %s: no violation spans — guarantee held across %d cycles\n", sub, rep.Records), nil
	}
	if opts.Span < 0 || opts.Span >= len(sr.Spans) {
		return "", fmt.Errorf("flightrec: span %d out of range (subscriber %q has %d)", opts.Span, sub, len(sr.Spans))
	}
	span := sr.Spans[opts.Span]

	var w strings.Builder
	state := "closed"
	if span.Open {
		state = "still open at log end"
	}
	fmt.Fprintf(&w, "subscriber %s: violation span %d/%d: %v → %v (%s)\n",
		sub, opts.Span+1, len(sr.Spans), span.Start, span.End, state)
	fmt.Fprintf(&w, "reservation %.0f GRPS; %d violation span(s) over %d cycles\n",
		float64(sr.Reservation), sr.Violations, rep.Records)
	if len(span.Exemplars) == 0 {
		fmt.Fprintf(&w, "exemplars: none captured (no traced requests settled before the span opened)\n")
	} else {
		fmt.Fprintf(&w, "exemplars: %s\n", strings.Join(span.Exemplars, ", "))
	}

	from, to := span.Start-opts.Margin, span.End+opts.Margin
	fmt.Fprintf(&w, "\ncoinciding events (%v → %v):\n", from, to)
	n := 0
	for i := range evs {
		ev := &evs[i]
		if ev.At < from || ev.At > to {
			continue
		}
		switch ev.Kind {
		case obs.KindFault:
			fmt.Fprintf(&w, "  %-10v fault     node %d %s\n", ev.At, ev.Node, ev.Detail)
		case obs.KindBreaker:
			fmt.Fprintf(&w, "  %-10v breaker   node %d %s (%s)\n", ev.At, ev.Node, ev.Stage, ev.Detail)
		case obs.KindAdmin:
			fmt.Fprintf(&w, "  %-10v admin     %s%s\n", ev.At, ev.Detail, subjectOf(ev))
		case obs.KindTier:
			fmt.Fprintf(&w, "  %-10v tier      rdn %d %s%s\n", ev.At, ev.RDN, ev.Detail, tierTarget(ev))
		case obs.KindViolation:
			if qos.SubscriberID(ev.Sub) == sub {
				fmt.Fprintf(&w, "  %-10v violation %s %s\n", ev.At, ev.Sub, ev.Detail)
			}
		default:
			n--
		}
		n++
	}
	if n == 0 {
		fmt.Fprintf(&w, "  (none)\n")
	}

	for _, ex := range span.Exemplars {
		fmt.Fprintf(&w, "\nexemplar %s:\n", ex)
		tid, err := obs.ParseTraceID(ex)
		if err != nil {
			fmt.Fprintf(&w, "  unparseable trace ID: %v\n", err)
			continue
		}
		hops := 0
		for i := range evs {
			ev := &evs[i]
			if ev.Kind != obs.KindSpan || ev.Trace != tid {
				continue
			}
			hops++
			line := ev.Stage
			if ev.Stage == obs.StageSettle {
				line = "settle " + ev.Detail
			} else if ev.Detail != "" {
				line += " (" + ev.Detail + ")"
			}
			if ev.Node != 0 {
				fmt.Fprintf(&w, "  %-10v rdn %d  %-24s node %d\n", ev.At, ev.RDN, line, ev.Node)
			} else {
				fmt.Fprintf(&w, "  %-10v rdn %d  %s\n", ev.At, ev.RDN, line)
			}
		}
		if hops == 0 {
			fmt.Fprintf(&w, "  no span events in the log (ring overwrote them before spill?)\n")
		}
	}
	return w.String(), nil
}

// subjectOf renders an admin event's target for the narration line.
func subjectOf(ev *obs.Event) string {
	switch {
	case ev.Sub != "":
		return " " + ev.Sub
	case ev.Node != 0:
		return fmt.Sprintf(" node %d", ev.Node)
	}
	return ""
}

// tierTarget renders a tier event's group/epoch/node context.
func tierTarget(ev *obs.Event) string {
	var b strings.Builder
	if ev.Sub != "" {
		fmt.Fprintf(&b, " group=%s", ev.Sub)
	}
	if ev.From != 0 || ev.To != 0 {
		fmt.Fprintf(&b, " %d→%d", ev.From, ev.To)
	}
	if ev.Epoch != 0 {
		fmt.Fprintf(&b, " epoch=%d", ev.Epoch)
	}
	return b.String()
}
