// Package flightrec is the feedback loop's flight recorder: it captures the
// scheduler's per-cycle state — balances, predicted charges, queue lengths,
// credits, dispatch counts by funding round, per-node outstanding load — into
// a fixed-size ring of CycleRecords, optionally spilling each record to a
// JSONL log, and audits the stream for guarantee conformance: a sliding-window
// delivered-versus-reserved GRPS check per subscriber with fast/slow
// burn-rate violation detection (package flightrec's Auditor).
//
// Recording is built for the scheduler's hot path: the ring slots are
// preallocated and reused, so committing a record in steady state performs no
// allocation, and a scheduler without a recorder attached pays a single nil
// check per tick.
package flightrec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"gage/internal/obs"
	"gage/internal/qos"
)

// SubRecord is one subscriber's slice of a cycle record. Usage and Completed
// accumulate everything the accounting messages delivered since the previous
// record; the dispatch counts are this cycle's decisions split by funding
// round. Reservation is embedded so a recorded log is self-describing — an
// offline audit needs no side-channel configuration.
type SubRecord struct {
	ID          qos.SubscriberID `json:"id"`
	Reservation qos.GRPS         `json:"res"`
	// Balance is the reserved-resource account after this cycle's credit,
	// dispatches and debits.
	Balance qos.Vector `json:"balance"`
	// Predicted is the EWMA per-request usage estimate.
	Predicted qos.Vector `json:"predicted"`
	// Credited is the effective credit granted this cycle: the balance delta
	// of the reservation-round credit step after clamping.
	Credited qos.Vector `json:"credited"`
	// Usage is the actual consumption reported since the previous record.
	Usage qos.Vector `json:"usage"`
	// QueueLen is the backlog left after this cycle's dispatch rounds.
	QueueLen int `json:"queueLen"`
	// Reserved and Spare count this cycle's dispatches by funding round.
	Reserved int `json:"reserved"`
	Spare    int `json:"spare"`
	// Completed counts requests reported finished since the previous record.
	Completed int `json:"completed"`
	// Dropped is the cumulative queue-overflow drop counter.
	Dropped uint64 `json:"dropped"`
}

// NodeRecord is one node's slice of a cycle record.
type NodeRecord struct {
	ID          int        `json:"id"`
	Outstanding qos.Vector `json:"outstanding"`
	Drained     qos.Vector `json:"drained"`
	Weight      float64    `json:"weight"`
}

// TierEvent is a front-end-tier control event riding on a cycle record:
// partition takeovers, handbacks, crashes, recoveries and fencing decisions
// from the multi-RDN frontier. Events make the failover protocol auditable
// offline — `gagetrace audit` reads them from the same JSONL log as the
// per-cycle accounting.
type TierEvent struct {
	// Kind is one of the frontier kinds — "takeover", "handback", "crash",
	// "recover", "fence" — or an admission-plane kind: "sub-admit",
	// "sub-resize", "sub-remove" (Group carries the subscriber ID, From/To
	// the old/new reservation) and "node-add", "node-drain" (To carries the
	// node ID).
	Kind  string `json:"kind"`
	Group string `json:"group,omitempty"`
	From  int    `json:"from,omitempty"`
	To    int    `json:"to,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// CycleRecord is one scheduling cycle's snapshot of the feedback loop.
type CycleRecord struct {
	// Seq numbers records from 0 in commit order.
	Seq uint64 `json:"seq"`
	// At is the record's offset from the recorder's clock origin (run start).
	At time.Duration `json:"at"`
	// RDN identifies which front-end instance committed the record. Zero is
	// the single-RDN pipeline; multi-RDN logs merge several streams and the
	// auditor keys its ordering checks on this.
	RDN int `json:"rdn,omitempty"`
	// Subs and Nodes are in the scheduler's deterministic visit order.
	Subs  []SubRecord  `json:"subs"`
	Nodes []NodeRecord `json:"nodes"`
	// Events are tier control events observed since the previous record.
	Events []TierEvent `json:"events,omitempty"`
}

// clone deep-copies a record so readers never alias ring-owned slices.
func (c *CycleRecord) clone() CycleRecord {
	out := *c
	out.Subs = append([]SubRecord(nil), c.Subs...)
	out.Nodes = append([]NodeRecord(nil), c.Nodes...)
	if c.Events != nil {
		out.Events = append([]TierEvent(nil), c.Events...)
	}
	return out
}

// DefaultRingSize is the ring capacity when Config.RingSize is zero: at the
// default 10 ms scheduling cycle it retains a bit over ten seconds of cycles.
const DefaultRingSize = 1024

// Config assembles a Recorder.
type Config struct {
	// RingSize is the number of retained cycle records (DefaultRingSize when
	// zero or negative).
	RingSize int
	// Spill, when non-nil, receives every committed record as one JSON line,
	// synchronously inside Commit. Spilling costs encoding allocations — use
	// it for offline analysis runs, not for the allocation-free steady state.
	Spill io.Writer
	// Now is the record timestamp source, an offset from the caller's chosen
	// origin. Nil means wall time since the recorder's construction; the
	// simulator installs its virtual clock via SetClock.
	Now func() time.Duration
}

// Recorder is the fixed-size cycle-record ring. One writer (the scheduler's
// tick, via Begin/Commit) and any number of readers (Recent/Since) may use it
// concurrently.
type Recorder struct {
	mu   sync.Mutex
	ring []CycleRecord
	// seq is the number of committed records; the next record gets this Seq.
	seq uint64
	// cur is the slot handed out by Begin, nil between cycles.
	cur      *CycleRecord
	now      func() time.Duration
	enc      *json.Encoder
	spillErr error
	// rdn stamps every committed record; zero for the single-RDN pipeline.
	rdn int
	// bus, when set, receives one KindCycle event per committed record and
	// one KindTier event per tier annotation, stamped with the record's own
	// At and RDN so cycle and event timelines merge exactly.
	bus *obs.Bus

	// pend queues tier events annotated between cycles; Begin drains it into
	// the next record. Its own lock keeps Annotate callable while the ring
	// lock is held across a Begin/Commit window.
	pendMu sync.Mutex
	pend   []TierEvent
}

// NewRecorder builds a recorder.
func NewRecorder(cfg Config) *Recorder {
	n := cfg.RingSize
	if n <= 0 {
		n = DefaultRingSize
	}
	r := &Recorder{
		ring: make([]CycleRecord, n),
		now:  cfg.Now,
	}
	if r.now == nil {
		start := time.Now()
		r.now = func() time.Duration { return time.Since(start) }
	}
	if cfg.Spill != nil {
		r.enc = json.NewEncoder(cfg.Spill)
	}
	return r
}

// SetClock replaces the record timestamp source — the simulator points the
// recorder at its virtual clock so live and simulated logs share an origin
// convention (offset from run start).
func (r *Recorder) SetClock(now func() time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now != nil {
		r.now = now
	}
}

// SetRDN sets the front-end id stamped on subsequent records. The multi-RDN
// tier gives each instance's recorder its RDN id so merged logs stay
// attributable; the default zero is the single-RDN pipeline.
func (r *Recorder) SetRDN(rdn int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rdn = rdn
}

// SetBus mirrors committed cycles and tier annotations onto the unified
// event bus, keyed by cycle sequence.
func (r *Recorder) SetBus(b *obs.Bus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bus = b
}

// Annotate queues a tier event for the next committed record. It is safe to
// call at any time, including while a Begin/Commit window is open elsewhere;
// the event rides on the next cycle to start.
func (r *Recorder) Annotate(ev TierEvent) {
	r.pendMu.Lock()
	r.pend = append(r.pend, ev)
	r.pendMu.Unlock()
}

// Begin opens the next ring slot for writing and returns it with its Seq and
// At stamped and its Subs/Nodes reset to length zero (capacity retained, so
// steady-state appends allocate nothing). Queued annotations are drained
// into the slot. The recorder stays locked until Commit; the writer fills
// the slot in between.
func (r *Recorder) Begin() *CycleRecord {
	r.mu.Lock()
	slot := &r.ring[r.seq%uint64(len(r.ring))]
	slot.Seq = r.seq
	slot.At = r.now()
	slot.RDN = r.rdn
	slot.Subs = slot.Subs[:0]
	slot.Nodes = slot.Nodes[:0]
	slot.Events = slot.Events[:0]
	r.pendMu.Lock()
	if len(r.pend) > 0 {
		slot.Events = append(slot.Events, r.pend...)
		r.pend = r.pend[:0]
	}
	r.pendMu.Unlock()
	r.cur = slot
	return slot
}

// Commit publishes the record opened by Begin, spilling it to the JSONL log
// when one is configured, and unlocks the recorder.
func (r *Recorder) Commit() {
	if r.enc != nil && r.spillErr == nil {
		if err := r.enc.Encode(r.cur); err != nil {
			// Keep recording into the ring; the log is best-effort and the
			// first failure is retained for SpillErr.
			r.spillErr = err
		}
	}
	if r.bus != nil {
		for _, te := range r.cur.Events {
			r.bus.Publish(obs.Event{
				Kind:   obs.KindTier,
				At:     r.cur.At,
				RDN:    r.cur.RDN,
				Detail: te.Kind,
				Sub:    te.Group,
				From:   te.From,
				To:     te.To,
				Epoch:  te.Epoch,
			})
		}
		r.bus.Publish(obs.Event{
			Kind:  obs.KindCycle,
			At:    r.cur.At,
			RDN:   r.cur.RDN,
			Cycle: r.cur.Seq,
		})
	}
	r.cur = nil
	r.seq++
	r.mu.Unlock()
}

// Seq returns the number of committed records.
func (r *Recorder) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// RingSize returns the ring capacity.
func (r *Recorder) RingSize() int { return len(r.ring) }

// SpillErr returns the first JSONL spill failure, if any.
func (r *Recorder) SpillErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spillErr
}

// Since returns deep copies of the committed records with Seq >= from, in
// order, plus the sequence number to pass next time and how many requested
// records were already overwritten (the ring lapped the reader). It is the
// auditor's incremental pull.
func (r *Recorder) Since(from uint64) (recs []CycleRecord, next uint64, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinceLocked(from)
}

func (r *Recorder) sinceLocked(from uint64) (recs []CycleRecord, next uint64, dropped uint64) {
	n := uint64(len(r.ring))
	lo := from
	if lo > r.seq {
		lo = r.seq
	}
	if r.seq > n && lo < r.seq-n {
		dropped = r.seq - n - lo
		lo = r.seq - n
	}
	if lo < r.seq {
		recs = make([]CycleRecord, 0, r.seq-lo)
		for s := lo; s < r.seq; s++ {
			recs = append(recs, r.ring[s%n].clone())
		}
	}
	return recs, r.seq, dropped
}

// Recent returns deep copies of the most recent n committed records (all of
// them when n is zero or exceeds the retained count), oldest first.
func (r *Recorder) Recent(n int) []CycleRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	from := uint64(0)
	if n > 0 && r.seq > uint64(n) {
		from = r.seq - uint64(n)
	}
	recs, _, _ := r.sinceLocked(from)
	return recs
}

// WriteLog writes records as a JSONL cycle log — the same format Commit
// spills.
func WriteLog(w io.Writer, recs []CycleRecord) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("flightrec: write cycle log: %w", err)
		}
	}
	return nil
}

// ReadLog parses a JSONL cycle log, tolerating blank lines.
func ReadLog(rd io.Reader) ([]CycleRecord, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []CycleRecord
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var rec CycleRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("flightrec: cycle log line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flightrec: read cycle log: %w", err)
	}
	return out, nil
}
