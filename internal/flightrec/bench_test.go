package flightrec_test

import (
	"fmt"
	"testing"
	"time"

	"gage/internal/core"
	"gage/internal/flightrec"
	"gage/internal/obs"
	"gage/internal/qos"
)

// benchScheduler builds the benchmark fixture: 8 subscribers on 4 nodes, the
// shape of a small hosting cluster. Queues stay empty so Tick isolates the
// per-cycle fixed cost — credit accounting plus, when attached, the recorder.
func benchScheduler(tb testing.TB, rec *flightrec.Recorder) *core.Scheduler {
	tb.Helper()
	var subs []qos.Subscriber
	for i := 0; i < 8; i++ {
		subs = append(subs, qos.Subscriber{
			ID:          qos.SubscriberID(fmt.Sprintf("site%d", i)),
			Hosts:       []string{fmt.Sprintf("site%d.example", i)},
			Reservation: qos.GRPS(50 * (i + 1)),
		})
	}
	dir, err := qos.NewDirectory(subs)
	if err != nil {
		tb.Fatal(err)
	}
	var nodes []core.NodeConfig
	for i := 0; i < 4; i++ {
		nodes = append(nodes, core.NodeConfig{
			ID:       core.NodeID(i + 1),
			Capacity: qos.GenericCost().Scale(1000),
		})
	}
	sched, err := core.New(dir, nodes, core.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	if rec != nil {
		sched.SetRecorder(rec)
	}
	return sched
}

func BenchmarkFlightrecTickRecorderOff(b *testing.B) {
	sched := benchScheduler(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Tick()
	}
}

func BenchmarkFlightrecTickRecorderOn(b *testing.B) {
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 128})
	sched := benchScheduler(b, rec)
	for i := 0; i < rec.RingSize(); i++ {
		sched.Tick() // lap the ring once so every slot holds its capacity
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Tick()
	}
}

// BenchmarkFlightrecRecord measures the recorder alone: one Begin/fill/Commit
// of a cluster-shaped record (8 subscribers, 4 nodes), no spill.
func BenchmarkFlightrecRecord(b *testing.B) {
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 128, Now: func() time.Duration { return 0 }})
	fill := func() {
		slot := rec.Begin()
		for i := 0; i < 8; i++ {
			slot.Subs = append(slot.Subs, flightrec.SubRecord{
				ID: "site", Reservation: 100, QueueLen: i, Reserved: 1,
			})
		}
		for i := 0; i < 4; i++ {
			slot.Nodes = append(slot.Nodes, flightrec.NodeRecord{ID: i, Weight: 1})
		}
		rec.Commit()
	}
	for i := 0; i < rec.RingSize(); i++ {
		fill() // lap the ring once so every slot holds its capacity
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
	}
}

// TestRecordSteadyStateAllocs pins the tentpole's allocation contract: with a
// recorder attached (ring only, no spill), a steady-state Tick — credit
// accounting plus one committed CycleRecord — allocates nothing.
func TestRecordSteadyStateAllocs(t *testing.T) {
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 64})
	sched := benchScheduler(t, rec)
	// Warm up: lap the ring once so every slot's Subs/Nodes have capacity.
	for i := 0; i < 80; i++ {
		sched.Tick()
	}
	if avg := testing.AllocsPerRun(500, func() { sched.Tick() }); avg != 0 {
		t.Fatalf("recorder-on Tick allocates %.1f times per op in steady state, want 0", avg)
	}
}

// TestRecorderOffSingleNilCheck locks the off-by-default contract from the
// other side: a scheduler with no recorder attached also ticks allocation-free
// (nothing hidden behind the nil check).
func TestRecorderOffNoAllocs(t *testing.T) {
	sched := benchScheduler(t, nil)
	for i := 0; i < 10; i++ {
		sched.Tick()
	}
	if avg := testing.AllocsPerRun(500, func() { sched.Tick() }); avg != 0 {
		t.Fatalf("recorder-off Tick allocates %.1f times per op, want 0", avg)
	}
}

// BenchmarkObsTickRecorderAndBus measures the full observability tax on the
// scheduler hot path: flight recorder on, with the unified event bus
// mirroring every committed cycle. Pinned in BENCH_obs.json; must stay
// 0 allocs/op, and its per-op cost within ~10% of
// BenchmarkFlightrecTickRecorderOn (the bus's marginal publish cost).
func BenchmarkObsTickRecorderAndBus(b *testing.B) {
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 128})
	bus := obs.NewBus(obs.BusConfig{RingSize: 4096, Now: func() time.Duration { return 0 }})
	rec.SetBus(bus)
	sched := benchScheduler(b, rec)
	for i := 0; i < rec.RingSize(); i++ {
		sched.Tick() // lap the ring once so every slot holds its capacity
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Tick()
	}
}
