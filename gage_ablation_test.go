// Ablation benchmarks for the design choices DESIGN.md calls out: the
// reservation-gate mode, the accounting-cycle length, and the usage
// predictor's smoothing factor. Each reports the quality metric it affects
// so `go test -bench Ablation` quantifies the trade-off.
package gage_test

import (
	"testing"
	"time"

	"gage/internal/cluster"
	"gage/internal/core"
	"gage/internal/qos"
	"gage/internal/workload"
)

// ablationRun drives one two-site, slow-feedback experiment and returns the
// actual service-rate deviation at a 1 s interval.
func ablationRun(b *testing.B, gate core.GateMode, noDrain bool, acctCycle time.Duration) float64 {
	b.Helper()
	subs := []qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 100, QueueLimit: 256},
		{ID: "b", Hosts: []string{"b.example"}, Reservation: 100, QueueLimit: 256},
	}
	var sources []workload.Source
	for _, s := range subs {
		arr, err := workload.NewConstantRate(110)
		if err != nil {
			b.Fatal(err)
		}
		sources = append(sources, workload.Source{
			Subscriber: s.ID,
			Gen:        workload.NewGeneric(s.Hosts[0]),
			Arrivals:   arr,
		})
	}
	res, err := cluster.Run(cluster.Options{
		Subscribers:          subs,
		Sources:              sources,
		NumRPNs:              2,
		Gate:                 gate,
		DisableCapacityDrain: noDrain,
		AcctCycle:            acctCycle,
		CreditWindow:         8 * time.Second,
		Warmup:               5 * time.Second,
		Duration:             40 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	dev, err := res.Deviation("a", time.Second)
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

// BenchmarkAblationCapacityDrain contrasts the paper-faithful node-capacity
// bookkeeping (capacity reappears only at accounting messages) with the
// library's optimistic drain model, under a 2 s accounting cycle. Without
// the drain, dispatch turns bursty at the feedback period and per-site
// service oscillates; with it, service stays smooth.
func BenchmarkAblationCapacityDrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		faithful := ablationRun(b, core.GateSelfClocked, true, 2*time.Second)
		drained := ablationRun(b, core.GateSelfClocked, false, 2*time.Second)
		b.ReportMetric(faithful*100, "faithful-dev%")
		b.ReportMetric(drained*100, "drain-dev%")
	}
}

// BenchmarkAblationGates contrasts the paper-faithful reported-usage gate
// with the library's self-clocked gate under a 2 s accounting cycle, both
// with faithful capacity bookkeeping.
func BenchmarkAblationGates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reported := ablationRun(b, core.GateReported, true, 2*time.Second)
		selfClocked := ablationRun(b, core.GateSelfClocked, true, 2*time.Second)
		b.ReportMetric(reported*100, "reported-dev%")
		b.ReportMetric(selfClocked*100, "selfclocked-dev%")
	}
}

// BenchmarkAblationAccountingCycle sweeps the accounting cycle in the
// paper-faithful configuration: the feedback frequency is the stability
// knob Figure 3 turns.
func BenchmarkAblationAccountingCycle(b *testing.B) {
	cycles := []time.Duration{50 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second}
	for i := 0; i < b.N; i++ {
		for _, c := range cycles {
			dev := ablationRun(b, core.GateReported, true, c)
			b.ReportMetric(dev*100, "dev%/"+c.String())
		}
	}
}

// BenchmarkAblationLocality contrasts content-aware (affinity) dispatch
// with pure least-loaded dispatch on a disk-bound workload with small RPN
// page caches — §3.6's effective-capacity claim, quantified.
func BenchmarkAblationLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := cluster.LocalityStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ServedWith, "req/s-affine")
		b.ReportMetric(res.ServedWithout, "req/s-leastloaded")
		b.ReportMetric(res.HitRateWith*100, "hit%-affine")
		b.ReportMetric(res.HitRateWithout*100, "hit%-leastloaded")
	}
}

// BenchmarkAblationPredictionAlpha sweeps the EWMA weight of the
// per-request usage predictor on a bursty CGI mix and reports the served
// rate: a sluggish predictor (tiny alpha) mis-sizes in-flight estimates and
// costs throughput when request costs shift.
func BenchmarkAblationPredictionAlpha(b *testing.B) {
	run := func(alpha float64) float64 {
		static := qos.Vector{CPUTime: 2 * time.Millisecond, DiskTime: 2 * time.Millisecond, NetBytes: 4000}
		cgi := qos.Vector{CPUTime: 40 * time.Millisecond, DiskTime: 5 * time.Millisecond, NetBytes: 8000}
		arr, err := workload.NewPoisson(120, 3)
		if err != nil {
			b.Fatal(err)
		}
		res, err := cluster.Run(cluster.Options{
			Subscribers: []qos.Subscriber{
				{ID: "a", Hosts: []string{"a.example"}, Reservation: 200, QueueLimit: 512},
			},
			Sources: []workload.Source{{
				Subscriber: "a",
				Gen:        workload.NewCGIMix("a.example", 11, 0.4, static, cgi),
				Arrivals:   arr,
			}},
			NumRPNs:      2,
			UnitResource: qos.CPU,
			Warmup:       5 * time.Second,
			Duration:     30 * time.Second,
			// PredictionAlpha is plumbed through the scheduler config.
			SchedulerAlpha: alpha,
		})
		if err != nil {
			b.Fatal(err)
		}
		row, _ := res.Row("a")
		return row.Served
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(0.01), "grps@alpha.01")
		b.ReportMetric(run(0.3), "grps@alpha.3")
		b.ReportMetric(run(0.9), "grps@alpha.9")
	}
}
