// Package gage is a Go reproduction of "Performance Guarantees for
// Cluster-Based Internet Services" (Li, Peng, Gopalan, Chiueh — ICDCS
// 2003): a QoS-aware request distribution system that guarantees each
// web-hosting subscriber a distinct rate of generic URL requests per second
// on a shared cluster, regardless of total input load.
//
// The building blocks live under internal/: the credit-based scheduler
// (internal/core), resource-usage accounting (internal/accounting),
// distributed TCP splicing on a packet-level network simulator
// (internal/splice, internal/netsim), the virtual-time cluster simulator
// that regenerates the paper's evaluation (internal/cluster), and a live
// TCP dispatcher with simulated backends (internal/dispatch,
// internal/backend).
//
// The benchmarks in this root package regenerate every table and figure of
// the paper's evaluation section; see DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
package gage
