# Tier-1 verification gate. Every change must keep `make verify` green.
.PHONY: verify build vet test race chaos lint bench bench-flightrec bench-sched bench-hier bench-obs bench-frontier stress-hier chaos-hier chaos-rdn chaos-elastic audit-smoke obs-smoke

verify: build vet lint test race audit-smoke obs-smoke bench-sched bench-hier bench-obs stress-hier chaos-rdn chaos-elastic

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Every package runs under the race detector: the scheduler and dispatcher
# are the concurrency hot spots (connection goroutines vs ticker vs
# concurrent accounting pollers), and the chaos/fault suites add crash-time
# races worth catching everywhere else too.
race:
	go test -race ./internal/...

# Fault-injection suite: the simulator's chaos tests (replayable crash
# schedules, settlement and balance invariants, the 3×-load overload drill)
# and the live dispatcher's scripted-outage, health-flap, overload-shedding
# and drain drills, run twice to shake out order dependence between runs.
chaos:
	go test -race -count=2 -run 'TestChaos|TestDiffReports|TestMaxConns|TestAdmission' \
		./internal/cluster/ ./internal/dispatch/ ./internal/faults/
	go test -race -count=2 ./internal/breaker/

# Benchmark trajectory: the root suite (one benchmark per paper table /
# figure) plus the telemetry overhead benchmarks — histogram record and the
# live dispatcher's request path with tracing off / every request / 1-in-100.
# Results land in BENCH_telemetry.json (go test -json stream) so regressions
# in the hot-path numbers (Record must stay 0 allocs/op, tracing-off serve
# overhead ≲5%) are diffable across commits.
bench:
	go test -run '^$$' -bench . -benchmem -benchtime=1x -json \
		. ./internal/telemetry/ ./internal/dispatch/ > BENCH_telemetry.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_telemetry.json | cut -d'"' -f4 || true

# Flight-recorder overhead trajectory: scheduler Tick with the recorder off
# and on, and the raw Begin/Commit record path. Results land in
# BENCH_flightrec.json so regressions (recorder-on Tick must stay 0
# allocs/op in steady state, off/on delta small) are diffable across
# commits.
bench-flightrec:
	go test -run '^$$' -bench Flightrec -benchmem -benchtime=1000x -json \
		./internal/flightrec/ > BENCH_flightrec.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_flightrec.json | cut -d'"' -f4 || true

# Scheduler hot-path scale trajectory: one steady-state scheduling cycle
# (arrivals + Tick + accounting feedback, 64-subscriber working set) at
# 1k/10k/100k registered subscribers, flight recorder off and on. Results
# land in BENCH_sched.json; per-cycle cost must stay flat across the sweep
# (O(1) per dispatch decision) and allocs/op must stay 0.
bench-sched:
	go test -run '^$$' -bench SchedCycle -benchmem -benchtime=300x -json \
		./internal/core/ > BENCH_sched.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_sched.json | cut -d'"' -f4 || true

# Hierarchical-scale trajectory: one steady-state scheduling cycle with a
# fixed 100-subscriber Zipf(1.1) hot set across 32 tenant groups while the
# registered population sweeps 1k→1M, flight recorder off and on. Results
# land in BENCH_hier.json; per-cycle cost must stay flat within 2× across
# the sweep (O(active groups + dispatched members), idle subscribers never
# materialize) and allocs/op must stay 0. The generous benchtime amortizes
# fixture-construction GC debt out of the per-op numbers.
bench-hier:
	go test -run '^$$' -bench HierCycle -benchmem -benchtime=2000x -json \
		./internal/core/ > BENCH_hier.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_hier.json | cut -d'"' -f4 || true

# Zipf stress, short mode: the simulator-side hierarchical scenario (mostly
# idle population across 16 tenant groups, Zipf-skewed hot set) with its
# settlement, no-shed, and zero-violation-span audits.
stress-hier:
	go test -short -run 'TestHierStress|TestChaosHierZipf' ./internal/cluster/

# Zipf stress under chaos: the hierarchical scenario driven through the PR-2
# node crash/recover plan under the race detector, twice — no tenant group's
# guarantee may break while a quarter of the cluster is down.
chaos-hier:
	go test -race -count=2 -run 'TestChaosHierZipf|TestHierStress' ./internal/cluster/

# RDN failover drill under the race detector: a deterministic 3-instance
# front-end tier loses one instance mid-run and recovers it. Asserts the
# takeover lands within one lease interval, settlement is exactly-once
# (admission and dispatch books close), the blast radius stays inside the
# victim's partition, and the merged flight-recorder audit sees clean
# survivors — plus run-to-run determinism and the lease-delay fencing case.
chaos-rdn:
	go test -race -run 'TestChaosRDNFailover|TestFrontierLeaseDelayFencing|TestFrontierSingleRDNMatchesRun' \
		./internal/cluster/

# Elasticity drill under the race detector: the scripted admission plane
# (mid-run subscriber admit/resize/remove, node add with slow-start ramp,
# feasibility-gated drain, and a refused infeasible admission) audited to
# zero violation spans for untouched subscribers, plus run-to-run
# determinism and the live admin API's property/decoder suites with a
# short fuzz smoke over the admin JSON decoders.
chaos-elastic:
	go test -race -run 'TestElasticityDrill|TestAdmin|TestServeAdmin' \
		./internal/cluster/ ./internal/dispatch/
	go test -run '^$$' -fuzz FuzzAdminDecoders -fuzztime 10s ./internal/dispatch/

# Front-end tier scale trajectory: one steady-state tier-wide scheduling
# cycle (128 subscribers over 32 rendezvous-partitioned groups) at 1, 2 and
# 3 front ends. Results land in BENCH_frontier.json; tier-wide per-cycle
# cost must stay flat vs the single-RDN baseline (each instance does ~1/N of
# the work) and allocs/op must stay 0.
bench-frontier:
	go test -run '^$$' -bench FrontierCycle -benchmem -benchtime=2000x -json \
		./internal/frontier/ > BENCH_frontier.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_frontier.json | cut -d'"' -f4 || true

# Unified-event-bus overhead trajectory: the raw ring publish and the
# scheduler Tick with recorder + bus mirroring, next to the recorder-only
# Tick baseline. Results land in BENCH_obs.json; publish and bus-on Tick
# must stay 0 allocs/op, and the bus's marginal Tick cost within ~10% of
# the recorder-only path (the BENCH_sched recorder-on baseline).
bench-obs:
	go test -run '^$$' -bench 'ObsPublish|ObsTickRecorderAndBus|FlightrecTickRecorderOn' \
		-benchmem -benchtime=50000x -json \
		./internal/obs/ ./internal/flightrec/ > BENCH_obs.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_obs.json | cut -d'"' -f4 || true

# End-to-end observability round trip through the CLI: replay a trace with
# the unified event log on (the reservation is deliberately infeasible, so
# the auditor opens violation spans), schema-lint the spilled event log,
# then render the explain story — gen → replay -events → lint → explain
# exactly as an operator would.
obs-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	go run ./cmd/gagetrace gen -kind specweb -rate 300 -duration 5s \
		-out "$$tmp/trace.jsonl" && \
	go run ./cmd/gagetrace replay -rpns 1 -grps 5000 -warmup 1s -window 2s \
		-cycles "$$tmp/cycles.jsonl" -events "$$tmp/events.jsonl" \
		"$$tmp/trace.jsonl" && \
	go run ./cmd/gagetrace lint "$$tmp/events.jsonl" && \
	go run ./cmd/gagetrace explain -cycles "$$tmp/cycles.jsonl" -warmup 1s \
		-window 2s site1 "$$tmp/events.jsonl"

# End-to-end flight-recorder round trip through the CLI: generate a short
# SPECweb99 trace, replay it through the simulator spilling the per-cycle
# log, then audit the log offline. Exercises gen → replay -cycles → audit
# exactly as an operator would.
audit-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	go run ./cmd/gagetrace gen -kind specweb -rate 80 -duration 3s \
		-poisson -out "$$tmp/trace.jsonl" && \
	go run ./cmd/gagetrace replay -rpns 2 -grps 60 \
		-cycles "$$tmp/cycles.jsonl" "$$tmp/trace.jsonl" && \
	go run ./cmd/gagetrace audit -warmup 1s "$$tmp/cycles.jsonl"

# Static hygiene gate: vet plus gofmt drift.
lint:
	go vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
