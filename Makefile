# Tier-1 verification gate. Every change must keep `make verify` green.
.PHONY: verify build vet test race

verify: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The scheduler and dispatcher are the concurrency hot spots (connection
# goroutines vs ticker vs concurrent accounting pollers): run them under the
# race detector on every change.
race:
	go test -race ./internal/core/... ./internal/dispatch/...
