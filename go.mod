module gage

go 1.22
