package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gage/internal/benchkit"
	"gage/internal/cluster"
)

// frontierBench prints the tier-scale per-cycle cost sweep — the numbers
// make bench-frontier pins in BENCH_frontier.json.
func frontierBench() error {
	fmt.Println("== front-end tier per-cycle cost vs tier size ==")
	fmt.Println("(128 subscribers over 32 groups; tier-wide cost must stay flat, so each")
	fmt.Println(" instance's share is ~1/N of the single-RDN baseline)")
	rows, err := benchkit.MeasureFrontierScale()
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %14s %14s %14s\n", "RDNs", "ns/cycle", "ns/cycle/RDN", "allocs/cycle")
	for _, r := range rows {
		fmt.Printf("%-6d %14d %14d %14d\n", r.RDNs, r.NsPerOp, r.NsPerRDN, r.Allocs)
	}
	fmt.Println()
	return nil
}

// rdnfail runs the deterministic RDN-failover drill and prints the whole
// story: the ownership timeline, per-partition service, the settlement
// books, the audit verdict, and the Figure-6-style knee projection. With
// -cycles PREFIX each instance's cycle log spills to PREFIX.rdnN.jsonl for
// gagetrace audit.
func rdnfail() error {
	fmt.Println("== RDN failover drill: 3-instance tier, kill one, recover it ==")
	rep, err := cluster.RDNFailoverDrill(cluster.FrontierDrillOptions{})
	if err != nil {
		return err
	}
	opts := rep.Opts
	fmt.Printf("tier of %d, %d RPNs, %d groups × %d subscribers, lease %v\n",
		opts.RDNCount, opts.NumRPNs, opts.Groups, opts.PerGroup, opts.LeaseInterval)
	fmt.Printf("victim RDN %d (partition %v) crashes at %v, recovers at %v\n",
		rep.Victim, rep.VictimGroups, opts.CrashAt, opts.RecoverAt)
	fmt.Println()
	fmt.Println("ownership timeline:")
	for _, ch := range rep.Result.Takeovers {
		fmt.Printf("  %8v  %-9s %-7s RDN %d -> RDN %d (epoch %d)\n",
			ch.At, ch.Kind, ch.Group, ch.From, ch.To, ch.Epoch)
	}
	if rep.TakeoverLatency > 0 {
		fmt.Printf("takeover latency: %v (lease interval %v)\n", rep.TakeoverLatency, opts.LeaseInterval)
	}
	fmt.Println()
	fmt.Printf("%-10s %-8s %10s %10s %10s %10s\n",
		"subscriber", "owner", "offered", "served", "dropped", "p95")
	part := make(map[string]string)
	for _, g := range rep.VictimGroups {
		part[g] = fmt.Sprintf("rdn%d*", rep.Victim)
	}
	for _, row := range rep.Result.Rows {
		g := string(row.ID[:6])
		owner, ok := part[g]
		if !ok {
			owner = "survivor"
		}
		fmt.Printf("%-10s %-8s %10d %10d %10d %10s\n",
			row.ID, owner, row.OfferedReqs, row.ServedReqs, row.DroppedReqs,
			row.P95Latency.Round(time.Millisecond))
	}
	r := rep.Result
	fmt.Printf("\nbooks: admitted=%d dispatched=%d delivered=%d queued_at_end=%d\n",
		r.AdmittedReqs, r.DispatchedReqs, r.DeliveredReqs, r.QueuedAtEnd)
	fmt.Printf("       refused_dead=%d handed_off=%d fenced=%d lost_queued=%d reclaimed=%d\n",
		r.RefusedDeadReqs, r.HandedOffReqs, r.FencedReqs, r.LostQueuedReqs, r.ReclaimedReqs)
	if err := rep.Check(); err != nil {
		fmt.Printf("drill verdict: FAIL — %v\n", err)
	} else {
		fmt.Println("drill verdict: PASS — exactly-once settlement, blast radius bounded to the")
		fmt.Println("               victim's partition, survivors audit clean, takeover within one")
		fmt.Println("               lease interval")
	}
	if *cyclesPath != "" {
		for i, recs := range rep.Records {
			path := fmt.Sprintf("%s.rdn%d.jsonl", *cyclesPath, i+1)
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("cycles: %w", err)
			}
			enc := json.NewEncoder(f)
			for j := range recs {
				if err := enc.Encode(&recs[j]); err != nil {
					f.Close()
					return fmt.Errorf("cycles: %w", err)
				}
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("cycle log: %s\n", path)
		}
		fmt.Printf("audit with: gagetrace audit -warmup %v %s.rdn*.jsonl\n", opts.Warmup, *cyclesPath)
	}
	fmt.Println()
	fmt.Println("Figure-6-style projection: the interrupt-overload knee moves right by N")
	fmt.Printf("%-6s %18s\n", "RDNs", "saturation req/s")
	for _, p := range cluster.FrontierKnee(cluster.DefaultRDNModel(), []int{1, 2, 3, 4}) {
		fmt.Printf("%-6d %18.0f\n", p.RDNs, p.SatReqPerSec)
	}
	fmt.Println()
	return nil
}
