// Command gagebench regenerates every table and figure of the paper's
// evaluation section (§4) against this reproduction:
//
//	gagebench table1       QoS under excessive input load (Table 1)
//	gagebench table2       spare resource allocation (Table 2)
//	gagebench fig3         deviation vs accounting cycle (Figure 3)
//	gagebench fig3r        Figure 3 on the SPECweb99-like workload
//	gagebench table3       per-connection/per-packet overheads (Table 3)
//	gagebench overhead     §4.2 total QoS overhead per RPN
//	gagebench scalability  §4.3 throughput vs cluster size
//	gagebench utilization  §4.3 RDN CPU utilization curve
//	gagebench sched        per-cycle scheduler cost vs directory size
//	gagebench hier         hierarchical per-cycle cost, 1k→1M registered
//	gagebench hierstress   Zipf stress run over tenant groups (simulator)
//	gagebench frontier     tier per-cycle cost, 1→3 front ends
//	gagebench rdnfail      RDN failover drill: kill 1 of 3, audit the blast radius
//	gagebench elastic      elasticity drill: scripted admit/resize/add/drain under load
//	gagebench all          everything above
//
// With -cycles FILE, hierstress and elastic also spill the run's per-cycle
// log as JSONL, ready for an offline conformance audit:
//
//	gagebench -cycles /tmp/cycles.jsonl hierstress
//	gagetrace audit -warmup 2s -window 4s /tmp/cycles.jsonl
//
// Output pairs each measured number with the paper's, so shape agreement is
// inspectable line by line.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gage/internal/benchkit"
	"gage/internal/cluster"
	"gage/internal/flightrec"
)

// cyclesPath is where hierstress and elastic spill their per-cycle log, and
// the prefix where rdnfail spills one log per front end (empty = off).
var cyclesPath = flag.String("cycles", "", "spill cycle logs to this JSONL file (hierstress, elastic) or prefix (rdnfail)")

func main() {
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	if err := run(cmd); err != nil {
		fmt.Fprintln(os.Stderr, "gagebench:", err)
		os.Exit(1)
	}
}

func run(cmd string) error {
	steps := map[string]func() error{
		"table1":      table1,
		"table2":      table2,
		"fig3":        func() error { return fig3(false) },
		"fig3r":       func() error { return fig3(true) },
		"table3":      table3,
		"overhead":    overhead,
		"scalability": scalability,
		"utilization": utilization,
		"projection":  projection,
		"locality":    locality,
		"sched":       sched,
		"hier":        hier,
		"hierstress":  hierstress,
		"frontier":    frontierBench,
		"rdnfail":     rdnfail,
		"elastic":     elastic,
	}
	if cmd == "all" {
		for _, name := range []string{
			"table1", "table2", "fig3", "fig3r",
			"table3", "overhead", "scalability", "utilization", "projection", "locality",
			"sched", "hier", "hierstress", "frontier", "rdnfail", "elastic",
		} {
			if err := steps[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	step, ok := steps[cmd]
	if !ok {
		return fmt.Errorf("unknown command %q (try table1 table2 fig3 fig3r table3 overhead scalability utilization projection locality all)", cmd)
	}
	return step()
}

func locality() error {
	fmt.Println("== §3.6: content-aware dispatching (locality) ==")
	res, err := cluster.LocalityStudy()
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %12s %12s\n", "dispatch policy", "req/s", "cache hits")
	fmt.Printf("%-24s %12.1f %11.0f%%\n", "least-loaded only", res.ServedWithout, res.HitRateWithout*100)
	fmt.Printf("%-24s %12.1f %11.0f%%\n", "content-aware (affinity)", res.ServedWith, res.HitRateWith*100)
	fmt.Printf("effective capacity gain: %.0f%%\n", (res.ServedWith/res.ServedWithout-1)*100)
	fmt.Println("paper (§3.6, design note): 'content-aware request dispatching can improve")
	fmt.Println("       the effective processing capacity ... by avoiding unnecessary I/Os'.")
	fmt.Println()
	return nil
}

func projection() error {
	fmt.Println("== §4.3: projected front-end capacity ==")
	fmt.Printf("%-42s %14s %10s\n", "configuration", "max req/s", "max RPNs")
	for _, row := range cluster.RDNProjection() {
		fmt.Printf("%-42s %14.0f %10d\n", row.Config, row.MaxReqPerSec, row.MaxRPNs)
	}
	fmt.Println("paper: 'conservatively ... around 14,000 to 15,000 requests/sec;")
	fmt.Println("        alternatively it can support up to 24 RPNs'.")
	fmt.Println()
	return nil
}

func sched() error {
	fmt.Println("== per-cycle scheduler cost vs directory size ==")
	fmt.Println("(64-subscriber working set; cost must stay flat as the directory grows)")
	rows, err := benchkit.MeasureSchedScale()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-9s %12s %12s\n", "subscribers", "recorder", "ns/cycle", "allocs/cycle")
	for _, r := range rows {
		rec := "off"
		if r.Recorder {
			rec = "on"
		}
		fmt.Printf("%-12d %-9s %12d %12d\n", r.Subs, rec, r.NsPerOp, r.Allocs)
	}
	fmt.Println()
	return nil
}

func hier() error {
	fmt.Println("== hierarchical per-cycle cost vs registered population ==")
	fmt.Println("(100-subscriber Zipf(1.1) hot set across 32 groups; cost must stay flat)")
	rows, err := benchkit.MeasureHierScale()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-9s %12s %12s\n", "subscribers", "recorder", "ns/cycle", "allocs/cycle")
	for _, r := range rows {
		rec := "off"
		if r.Recorder {
			rec = "on"
		}
		fmt.Printf("%-12d %-9s %12d %12d\n", r.Subs, rec, r.NsPerOp, r.Allocs)
	}
	fmt.Println()
	return nil
}

func hierstress() error {
	fmt.Println("== hierarchical Zipf stress (simulator, tenant groups) ==")
	opts := cluster.HierStressOptions{}
	var rec *flightrec.Recorder
	var spill *os.File
	if *cyclesPath != "" {
		f, err := os.Create(*cyclesPath)
		if err != nil {
			return fmt.Errorf("cycles: %w", err)
		}
		spill = f
		rec = flightrec.NewRecorder(flightrec.Config{RingSize: 256, Spill: f})
		opts.Recorder = rec
	}
	run, err := cluster.HierStress(opts)
	if err != nil {
		return err
	}
	opts = cluster.HierStressOptions{}.WithDefaults()
	fmt.Printf("registered %d across %d groups, %d hot, %d RPNs, %.0f%% utilization\n",
		opts.Registered, opts.Groups, opts.Hot, opts.NumRPNs, opts.Utilization*100)
	fmt.Printf("%-10s %-8s %10s %10s %10s %10s\n",
		"subscriber", "group", "res GRPS", "offered", "served", "p95")
	for _, sub := range run.Hot {
		row, ok := run.Row(sub.ID)
		if !ok {
			continue
		}
		fmt.Printf("%-10s %-8s %10.0f %10d %10d %10s\n",
			sub.ID, run.GroupOf[sub.ID], float64(sub.Reservation),
			row.OfferedReqs, row.ServedReqs, row.P95Latency.Round(time.Millisecond))
	}
	fmt.Printf("books: dispatched=%d delivered=%d shed=%d balance_violations=%d\n",
		run.DispatchedReqs, run.DeliveredReqs, run.ShedReqs, run.BalanceViolations)
	if spill != nil {
		if err := rec.SpillErr(); err != nil {
			return fmt.Errorf("cycles spill: %w", err)
		}
		if err := spill.Close(); err != nil {
			return err
		}
		fmt.Printf("cycle log: %s (audit with: gagetrace audit -warmup %v -window 4s %s)\n",
			*cyclesPath, opts.Warmup, *cyclesPath)
	}
	fmt.Println()
	return nil
}

func elastic() error {
	fmt.Println("== elasticity drill: scripted admission plane under load ==")
	var rec *flightrec.Recorder
	var spill *os.File
	if *cyclesPath != "" {
		f, err := os.Create(*cyclesPath)
		if err != nil {
			return fmt.Errorf("cycles: %w", err)
		}
		spill = f
		rec = flightrec.NewRecorder(flightrec.Config{RingSize: 256, Spill: f})
	}
	res, err := cluster.Run(cluster.ElasticityDrillOptions(rec))
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-18s %-8s %-12s %-8s %10s\n",
		"at", "operation", "subject", "code", "applied", "committed")
	for _, out := range res.AdmissionLog {
		subject := string(out.Subscriber)
		if subject == "" {
			subject = fmt.Sprintf("node %d", out.Node)
		}
		code := out.Decision.Code
		if out.Err != "" {
			code = "error"
		}
		fmt.Printf("%-6s %-18s %-8s %-12s %-8v %10.0f\n",
			out.At, out.Kind, subject, code, out.Applied, float64(out.CommittedAfter))
		if out.Decision.Reason != "" {
			fmt.Printf("       └─ %s\n", out.Decision.Reason)
		}
	}
	fmt.Printf("%-10s %10s %10s %10s %10s\n",
		"subscriber", "res GRPS", "offered", "served", "p95")
	for _, row := range res.Rows {
		fmt.Printf("%-10s %10.0f %10d %10d %10s\n",
			row.ID, float64(row.Reservation),
			row.OfferedReqs, row.ServedReqs, row.P95Latency.Round(time.Millisecond))
	}
	fmt.Printf("books: dispatched=%d delivered=%d shed=%d queued=%d orphaned=%d accepted=%d rejected=%d\n",
		res.DispatchedReqs, res.DeliveredReqs, res.ShedReqs, res.QueuedAtEnd,
		res.OrphanedReqs, res.AdmissionAccepted, res.AdmissionRejected)
	if spill != nil {
		if err := rec.SpillErr(); err != nil {
			return fmt.Errorf("cycles spill: %w", err)
		}
		if err := spill.Close(); err != nil {
			return err
		}
		fmt.Printf("cycle log: %s (audit with: gagetrace audit -warmup %v %s)\n",
			*cyclesPath, cluster.ElasticityDrillWarmup, *cyclesPath)
	}
	fmt.Println()
	return nil
}

func table1() error {
	fmt.Println("== Table 1: QoS guarantee under excessive input loads (GRPS) ==")
	res, err := cluster.Table1()
	if err != nil {
		return err
	}
	paper := map[string][3]float64{
		"site1": {259.4, 259.4, 0.0},
		"site2": {161.1, 161.1, 0.0},
		"site3": {390.3, 365.4, 24.9},
	}
	fmt.Printf("%-8s %12s %10s %10s %10s   %s\n",
		"site", "reservation", "input", "served", "dropped", "paper (in/served/dropped)")
	for _, row := range res.Rows {
		p := paper[string(row.ID)]
		fmt.Printf("%-8s %12.0f %10.1f %10.1f %10.1f   %.1f / %.1f / %.1f\n",
			row.ID, float64(row.Reservation), row.Offered, row.Served, row.Dropped,
			p[0], p[1], p[2])
	}
	fmt.Println()
	return nil
}

func table2() error {
	fmt.Println("== Table 2: spare resource allocation (GRPS) ==")
	res, err := cluster.Table2()
	if err != nil {
		return err
	}
	paper := map[string][3]float64{
		"site1": {424.6, 422.2, 172.2},
		"site2": {364.5, 342.4, 142.1},
	}
	fmt.Printf("%-8s %12s %10s %10s %10s   %s\n",
		"site", "reservation", "input", "served", "spare", "paper (in/served/spare)")
	for _, row := range res.Rows {
		p := paper[string(row.ID)]
		spare := row.Served - float64(row.Reservation)
		fmt.Printf("%-8s %12.0f %10.1f %10.1f %10.1f   %.1f / %.1f / %.1f\n",
			row.ID, float64(row.Reservation), row.Offered, row.Served, spare,
			p[0], p[1], p[2])
	}
	fmt.Println()
	return nil
}

func fig3(realistic bool) error {
	label := "constant synthetic workload"
	if realistic {
		label = "SPECweb99-like workload"
	}
	fmt.Printf("== Figure 3: deviation from ideal reservation (%s) ==\n", label)
	cycles := cluster.Figure3Cycles()
	intervals := cluster.Figure3Intervals()
	pts, err := cluster.Figure3(cycles, intervals, realistic)
	if err != nil {
		return err
	}
	dev := make(map[[2]time.Duration]float64, len(pts))
	for _, p := range pts {
		dev[[2]time.Duration{p.AcctCycle, p.Interval}] = p.Deviation
	}
	fmt.Printf("%-18s", "interval \\ cycle")
	for _, c := range cycles {
		fmt.Printf("%10s", c)
	}
	fmt.Println()
	for _, iv := range intervals {
		fmt.Printf("%-18s", iv)
		for _, c := range cycles {
			fmt.Printf("%9.1f%%", dev[[2]time.Duration{c, iv}]*100)
		}
		fmt.Println()
	}
	fmt.Println("paper: deviation grows with the accounting cycle, shrinks with the interval;")
	fmt.Println("       ≥100% at (2s cycle, 1s interval); ≤8% at ≥4s intervals with ≤500ms cycles.")
	fmt.Println()
	return nil
}

func table3() error {
	fmt.Println("== Table 3: per-connection and per-packet overheads ==")
	fmt.Println("(measuring; this takes a minute)")
	rows, err := benchkit.MeasureTable3()
	if err != nil {
		return err
	}
	fmt.Printf("%-26s %14s %14s\n", "operation", "measured", "paper (2002)")
	for _, r := range rows {
		fmt.Printf("%-26s %14s %14s\n", r.Name, r.Measured, r.Paper)
	}
	fmt.Println()
	return nil
}

func overhead() error {
	fmt.Println("== §4.2: total QoS overhead per RPN ==")
	rows, err := benchkit.MeasureTable3()
	if err != nil {
		return err
	}
	byName := make(map[string]benchkit.OpCost, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	const pairs = 5 // the paper assumes 5 data-ACK packet pairs per request
	perReq := byName["connection setup (RPN)"].Measured +
		pairs*(byName["remapping incoming"].Measured+byName["remapping outgoing"].Measured)
	paperPerReq := byName["connection setup (RPN)"].Paper +
		pairs*(byName["remapping incoming"].Paper+byName["remapping outgoing"].Paper)
	const rate = 540.0 // requests/sec one RPN sustains
	fmt.Printf("per-request RPN overhead: measured %v (paper %v)\n", perReq, paperPerReq)
	fmt.Printf("at %.0f req/s: measured %.3f%% of one CPU (paper %.2f%% — 'less than 3.06%%')\n",
		rate, perReq.Seconds()*rate*100, paperPerReq.Seconds()*rate*100)
	fmt.Println()
	return nil
}

func scalability() error {
	fmt.Println("== §4.3: throughput scalability (requests/sec) ==")
	pts, err := cluster.Scalability(8)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %12s %14s %10s   %s\n", "RPNs", "with Gage", "without Gage", "penalty", "paper: 540/RPN with, 550.5 without")
	for _, p := range pts {
		penalty := 1 - p.WithGage/p.WithoutGage
		fmt.Printf("%6d %12.1f %14.1f %9.1f%%\n", p.NumRPNs, p.WithGage, p.WithoutGage, penalty*100)
	}
	fmt.Println("paper: linear growth 540 → ≈4800 req/s from 1 to 8 RPNs; ≈1.8% QoS penalty.")
	fmt.Println()
	return nil
}

func utilization() error {
	fmt.Println("== §4.3: RDN CPU utilization vs throughput ==")
	rates := []float64{500, 1000, 2000, 3000, 4000, 4400, 4600, 4800}
	pts, err := cluster.RDNUtilizationCurve(rates)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %12s %14s\n", "offered r/s", "served r/s", "RDN CPU util")
	for _, p := range pts {
		fmt.Printf("%12.0f %12.0f %13.1f%%\n", p.OfferedReqPerSec, p.ServedReqPerSec, p.RDNUtilization*100)
	}
	fmt.Println("paper: close to linear to ≈4400 req/s, then exponential growth to ≈4800")
	fmt.Println("       as the overloaded network subsystem inflates interrupt handling.")
	fmt.Println()
	return nil
}
