// Command gaged runs the Gage front-end request distribution node (RDN) as
// a live TCP dispatcher: it classifies incoming HTTP requests by virtual
// host, enforces per-subscriber GRPS reservations with the credit-based
// scheduler, load-balances across the configured back ends, and polls their
// accounting reports to keep the balances honest.
//
// Usage:
//
//	gaged -listen :8080 -config cluster.json
//
// The JSON config:
//
//	{
//	  "subscribers": [
//	    {"id": "site1", "hosts": ["www.site1.example"], "reservationGRPS": 250, "queueLimit": 128}
//	  ],
//	  "backends": [
//	    {"id": 1, "addr": "127.0.0.1:9001"}
//	  ],
//	  "acctCycleMillis": 100,
//	  "schedCycleMillis": 10,
//	  "dialTimeoutMillis": 2000,
//	  "queueTimeoutMillis": 30000,
//	  "retryBackoffMillis": 25,
//	  "maxConns": 1024,
//	  "drainTimeoutMillis": 5000,
//	  "clientIdleTimeoutMillis": 60000,
//	  "backendTimeoutMillis": 60000,
//	  "breakerThreshold": 3,
//	  "breakerCooldownMillis": 1000,
//	  "slowStartCycles": 4
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"gage/internal/core"
	"gage/internal/dispatch"
	"gage/internal/qos"
)

// fileConfig is the on-disk configuration format.
type fileConfig struct {
	Subscribers []struct {
		ID              string   `json:"id"`
		Hosts           []string `json:"hosts"`
		ReservationGRPS float64  `json:"reservationGRPS"`
		QueueLimit      int      `json:"queueLimit"`
	} `json:"subscribers"`
	Backends []struct {
		ID   int    `json:"id"`
		Addr string `json:"addr"`
	} `json:"backends"`
	AcctCycleMillis    int `json:"acctCycleMillis"`
	SchedCycleMillis   int `json:"schedCycleMillis"`
	DialTimeoutMillis  int `json:"dialTimeoutMillis"`
	QueueTimeoutMillis int `json:"queueTimeoutMillis"`
	RetryBackoffMillis int `json:"retryBackoffMillis"`
	// Overload control and graceful degradation.
	MaxConns                int `json:"maxConns"`
	DrainTimeoutMillis      int `json:"drainTimeoutMillis"`
	ClientIdleTimeoutMillis int `json:"clientIdleTimeoutMillis"`
	BackendTimeoutMillis    int `json:"backendTimeoutMillis"`
	BreakerThreshold        int `json:"breakerThreshold"`
	BreakerCooldownMillis   int `json:"breakerCooldownMillis"`
	// SlowStartCycles is the recovery ramp length in accounting cycles;
	// -1 disables the ramp (recovered nodes rejoin at full weight).
	SlowStartCycles int `json:"slowStartCycles"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gaged:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", ":8080", "address to listen on")
		config = flag.String("config", "", "path to the cluster JSON config (required)")
	)
	flag.Parse()
	if *config == "" {
		return fmt.Errorf("-config is required")
	}
	raw, err := os.ReadFile(*config)
	if err != nil {
		return err
	}
	cfg, err := parseConfig(raw)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *config, err)
	}
	srv, err := dispatch.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("gaged: %d subscribers, %d backends, serving on %s\n",
		len(cfg.Subscribers), len(cfg.Backends), ln.Addr())
	return srv.Serve(ln)
}

// parseConfig converts the on-disk JSON into a dispatcher configuration.
func parseConfig(raw []byte) (dispatch.Config, error) {
	var fc fileConfig
	if err := json.Unmarshal(raw, &fc); err != nil {
		return dispatch.Config{}, err
	}
	cfg := dispatch.Config{}
	for _, s := range fc.Subscribers {
		cfg.Subscribers = append(cfg.Subscribers, qos.Subscriber{
			ID:          qos.SubscriberID(s.ID),
			Hosts:       s.Hosts,
			Reservation: qos.GRPS(s.ReservationGRPS),
			QueueLimit:  s.QueueLimit,
		})
	}
	for _, b := range fc.Backends {
		cfg.Backends = append(cfg.Backends, dispatch.Backend{
			ID:   core.NodeID(b.ID),
			Addr: b.Addr,
		})
	}
	if fc.AcctCycleMillis > 0 {
		cfg.AcctCycle = time.Duration(fc.AcctCycleMillis) * time.Millisecond
	}
	if fc.SchedCycleMillis > 0 {
		cfg.Scheduler.Cycle = time.Duration(fc.SchedCycleMillis) * time.Millisecond
	}
	if fc.DialTimeoutMillis > 0 {
		cfg.DialTimeout = time.Duration(fc.DialTimeoutMillis) * time.Millisecond
	}
	if fc.QueueTimeoutMillis > 0 {
		cfg.QueueTimeout = time.Duration(fc.QueueTimeoutMillis) * time.Millisecond
	}
	if fc.RetryBackoffMillis > 0 {
		cfg.RetryBackoff = time.Duration(fc.RetryBackoffMillis) * time.Millisecond
	}
	if fc.MaxConns > 0 {
		cfg.MaxConns = fc.MaxConns
	}
	if fc.DrainTimeoutMillis > 0 {
		cfg.DrainTimeout = time.Duration(fc.DrainTimeoutMillis) * time.Millisecond
	}
	if fc.ClientIdleTimeoutMillis > 0 {
		cfg.ClientIdleTimeout = time.Duration(fc.ClientIdleTimeoutMillis) * time.Millisecond
	}
	if fc.BackendTimeoutMillis > 0 {
		cfg.BackendTimeout = time.Duration(fc.BackendTimeoutMillis) * time.Millisecond
	}
	if fc.BreakerThreshold > 0 {
		cfg.Breaker.Threshold = fc.BreakerThreshold
	}
	if fc.BreakerCooldownMillis > 0 {
		cfg.Breaker.Cooldown = time.Duration(fc.BreakerCooldownMillis) * time.Millisecond
	}
	if fc.SlowStartCycles != 0 {
		cfg.Breaker.SlowStart = fc.SlowStartCycles
	}
	return cfg, nil
}
