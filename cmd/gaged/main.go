// Command gaged runs the Gage front-end request distribution node (RDN) as
// a live TCP dispatcher: it classifies incoming HTTP requests by virtual
// host, enforces per-subscriber GRPS reservations with the credit-based
// scheduler, load-balances across the configured back ends, and polls their
// accounting reports to keep the balances honest.
//
// Usage:
//
//	gaged -listen :8080 -config cluster.json
//
// The JSON config:
//
//	{
//	  "subscribers": [
//	    {"id": "site1", "hosts": ["www.site1.example"], "reservationGRPS": 250, "queueLimit": 128, "group": "tier1"}
//	  ],
//	  "backends": [
//	    {"id": 1, "addr": "127.0.0.1:9001"}
//	  ],
//	  "acctCycleMillis": 100,
//	  "schedCycleMillis": 10,
//	  "dialTimeoutMillis": 2000,
//	  "queueTimeoutMillis": 30000,
//	  "retryBackoffMillis": 25,
//	  "maxConns": 1024,
//	  "shardCount": 16,
//	  "drainTimeoutMillis": 5000,
//	  "clientIdleTimeoutMillis": 60000,
//	  "backendTimeoutMillis": 60000,
//	  "breakerThreshold": 3,
//	  "breakerCooldownMillis": 1000,
//	  "slowStartCycles": 4,
//	  "traceSampleEvery": 100,
//	  "traceBuffer": 256,
//	  "cycleRingSize": 1024,
//	  "cycleLog": "/var/log/gage/cycles.jsonl",
//	  "conformanceWindowMillis": 10000,
//	  "eventRingSize": 4096,
//	  "eventLog": "/var/log/gage/events.jsonl",
//	  "exemplarsPerSpan": 4,
//	  "adminListen": "127.0.0.1:8081",
//	  "admitHeadroom": 0.9,
//	  "rdnCount": 3,
//	  "rdnId": 1,
//	  "leaseMillis": 1000,
//	  "leaseListen": "127.0.0.1:7070",
//	  "leaseAddr": "127.0.0.1:7070"
//	}
//
// With rdnCount >= 2 the instance joins a multi-RDN front-end tier: the
// instance with leaseListen set hosts the lease table, every instance dials
// leaseAddr, heartbeats at a third of leaseMillis, and serves only the
// tenant groups the table currently assigns it (see cmd/gaged/frontier.go).
//
// Every millisecond/count knob is optional: 0 or absent means the library
// default applies; negative values are configuration errors (except
// slowStartCycles, where -1 disables the recovery ramp). With -pprof ADDR
// the standard net/http/pprof debug server is served on ADDR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"gage/internal/core"
	"gage/internal/dispatch"
	"gage/internal/qos"
)

// fileConfig is the on-disk configuration format.
type fileConfig struct {
	Subscribers []struct {
		ID              string   `json:"id"`
		Hosts           []string `json:"hosts"`
		ReservationGRPS float64  `json:"reservationGRPS"`
		QueueLimit      int      `json:"queueLimit"`
		// Group is the tenant tier the subscriber schedules under; empty
		// means the default group (flat, paper-exact scheduling).
		Group string `json:"group"`
	} `json:"subscribers"`
	Backends []struct {
		ID   int    `json:"id"`
		Addr string `json:"addr"`
	} `json:"backends"`
	AcctCycleMillis    int `json:"acctCycleMillis"`
	SchedCycleMillis   int `json:"schedCycleMillis"`
	DialTimeoutMillis  int `json:"dialTimeoutMillis"`
	QueueTimeoutMillis int `json:"queueTimeoutMillis"`
	RetryBackoffMillis int `json:"retryBackoffMillis"`
	// Overload control and graceful degradation. ShardCount is the
	// admission/accounting shard count (rounded up to a power of two;
	// 0 = library default).
	MaxConns                int `json:"maxConns"`
	ShardCount              int `json:"shardCount"`
	DrainTimeoutMillis      int `json:"drainTimeoutMillis"`
	ClientIdleTimeoutMillis int `json:"clientIdleTimeoutMillis"`
	BackendTimeoutMillis    int `json:"backendTimeoutMillis"`
	BreakerThreshold        int `json:"breakerThreshold"`
	BreakerCooldownMillis   int `json:"breakerCooldownMillis"`
	// SlowStartCycles is the recovery ramp length in accounting cycles;
	// -1 disables the ramp (recovered nodes rejoin at full weight).
	SlowStartCycles int `json:"slowStartCycles"`
	// Telemetry: every Nth request is lifecycle-traced (0 = tracing off),
	// with the most recent TraceBuffer completed traces retained for the
	// /_gage/trace endpoint.
	TraceSampleEvery int `json:"traceSampleEvery"`
	TraceBuffer      int `json:"traceBuffer"`
	// Flight recorder: CycleRingSize retains that many scheduler cycle
	// records for /_gage/cycles (0 = recording off unless cycleLog is set);
	// CycleLog appends every record as JSONL to the named file;
	// ConformanceWindowMillis is the auditor's slow burn-rate window.
	CycleRingSize           int    `json:"cycleRingSize"`
	CycleLog                string `json:"cycleLog"`
	ConformanceWindowMillis int    `json:"conformanceWindowMillis"`
	// Unified event bus: EventRingSize retains that many observability
	// events for /_gage/events (0 = bus off unless eventLog is set);
	// EventLog appends every event as JSONL to the named file;
	// ExemplarsPerSpan is how many recent sampled trace IDs the auditor
	// attaches to each violation span it opens.
	EventRingSize    int    `json:"eventRingSize"`
	EventLog         string `json:"eventLog"`
	ExemplarsPerSpan int    `json:"exemplarsPerSpan"`
	// AdminListen serves the admission control plane (/_gage/admin/*) on a
	// separate listener so operator traffic never competes with client
	// traffic; empty disables the admin API. AdmitHeadroom caps the
	// committed-reservation fraction of enabled capacity the admission
	// policy will grant, in (0, 1]; 0 means the policy default 1.0.
	AdminListen   string  `json:"adminListen"`
	AdmitHeadroom float64 `json:"admitHeadroom"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gaged:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", ":8080", "address to listen on")
		config    = flag.String("config", "", "path to the cluster JSON config (required)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (disabled when empty)")
	)
	flag.Parse()
	if *config == "" {
		return fmt.Errorf("-config is required")
	}
	raw, err := os.ReadFile(*config)
	if err != nil {
		return err
	}
	cfg, err := parseConfig(raw)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *config, err)
	}
	tcfg, err := parseTier(raw)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *config, err)
	}
	var tr *tierRunner
	if tcfg.enabled() {
		tr = newTierRunner(tcfg, subscriberGroups(cfg.Subscribers))
		cfg.Owns = tr.owns
		cfg.Fence = tr.owns
		// Salt trace IDs and stamp bus events with this instance's id so
		// per-RDN event logs merge attributably (gagetrace explain).
		cfg.RDN = tcfg.RDNID
	}
	srv, err := dispatch.New(cfg)
	if err != nil {
		return err
	}
	if tr != nil {
		tr.srv = srv
		if err := tr.start(); err != nil {
			return err
		}
		defer tr.shutdown()
		fmt.Printf("gaged: tier member %d/%d, lease service %s\n",
			tcfg.RDNID, tcfg.RDNCount, tcfg.LeaseAddr)
	}
	if *pprofAddr != "" {
		// The pprof mux is the package-registered DefaultServeMux; it runs
		// beside (never on) the dispatcher's listener.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "gaged: pprof:", err)
			}
		}()
		fmt.Printf("gaged: pprof on %s\n", *pprofAddr)
	}
	adminAddr, err := parseAdminListen(raw)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *config, err)
	}
	if adminAddr != "" {
		adminLn, err := net.Listen("tcp", adminAddr)
		if err != nil {
			return fmt.Errorf("adminListen: %w", err)
		}
		go func() {
			if err := srv.ServeAdmin(adminLn); err != nil {
				fmt.Fprintln(os.Stderr, "gaged: admin:", err)
			}
		}()
		fmt.Printf("gaged: admin control plane on %s\n", adminLn.Addr())
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("gaged: %d subscribers, %d backends, serving on %s\n",
		len(cfg.Subscribers), len(cfg.Backends), ln.Addr())
	return srv.Serve(ln)
}

// parseConfig converts the on-disk JSON into a dispatcher configuration.
// Knobs left at 0 stay zero so the library defaults apply; negative knobs
// are configuration errors (except slowStartCycles = -1, the documented
// ramp-off switch) — a typo like "queueTimeoutMillis": -30000 must fail
// loudly at startup, not silently become an infinite or default timeout.
func parseConfig(raw []byte) (dispatch.Config, error) {
	var fc fileConfig
	if err := json.Unmarshal(raw, &fc); err != nil {
		return dispatch.Config{}, err
	}
	cfg := dispatch.Config{}
	for _, s := range fc.Subscribers {
		if s.ReservationGRPS < 0 {
			return dispatch.Config{}, fmt.Errorf("subscriber %q: reservationGRPS must not be negative (got %v)", s.ID, s.ReservationGRPS)
		}
		if s.QueueLimit < 0 {
			return dispatch.Config{}, fmt.Errorf("subscriber %q: queueLimit must not be negative (got %d)", s.ID, s.QueueLimit)
		}
		cfg.Subscribers = append(cfg.Subscribers, qos.Subscriber{
			ID:          qos.SubscriberID(s.ID),
			Hosts:       s.Hosts,
			Reservation: qos.GRPS(s.ReservationGRPS),
			QueueLimit:  s.QueueLimit,
			Group:       s.Group,
		})
	}
	for _, b := range fc.Backends {
		cfg.Backends = append(cfg.Backends, dispatch.Backend{
			ID:   core.NodeID(b.ID),
			Addr: b.Addr,
		})
	}
	// millis applies one optional millisecond knob: 0 leaves the library
	// default, positive sets, negative is an error naming the knob.
	var err error
	millis := func(name string, v int, dst *time.Duration) {
		if err != nil {
			return
		}
		if v < 0 {
			err = fmt.Errorf("%s must not be negative (got %d)", name, v)
			return
		}
		if v > 0 {
			*dst = time.Duration(v) * time.Millisecond
		}
	}
	count := func(name string, v int, dst *int) {
		if err != nil {
			return
		}
		if v < 0 {
			err = fmt.Errorf("%s must not be negative (got %d)", name, v)
			return
		}
		if v > 0 {
			*dst = v
		}
	}
	millis("acctCycleMillis", fc.AcctCycleMillis, &cfg.AcctCycle)
	millis("schedCycleMillis", fc.SchedCycleMillis, &cfg.Scheduler.Cycle)
	millis("dialTimeoutMillis", fc.DialTimeoutMillis, &cfg.DialTimeout)
	millis("queueTimeoutMillis", fc.QueueTimeoutMillis, &cfg.QueueTimeout)
	millis("retryBackoffMillis", fc.RetryBackoffMillis, &cfg.RetryBackoff)
	millis("drainTimeoutMillis", fc.DrainTimeoutMillis, &cfg.DrainTimeout)
	millis("clientIdleTimeoutMillis", fc.ClientIdleTimeoutMillis, &cfg.ClientIdleTimeout)
	millis("backendTimeoutMillis", fc.BackendTimeoutMillis, &cfg.BackendTimeout)
	millis("breakerCooldownMillis", fc.BreakerCooldownMillis, &cfg.Breaker.Cooldown)
	millis("conformanceWindowMillis", fc.ConformanceWindowMillis, &cfg.ConformanceWindow)
	count("maxConns", fc.MaxConns, &cfg.MaxConns)
	count("shardCount", fc.ShardCount, &cfg.ShardCount)
	count("breakerThreshold", fc.BreakerThreshold, &cfg.Breaker.Threshold)
	count("traceSampleEvery", fc.TraceSampleEvery, &cfg.TraceSampleEvery)
	count("traceBuffer", fc.TraceBuffer, &cfg.TraceBuffer)
	count("cycleRingSize", fc.CycleRingSize, &cfg.CycleRingSize)
	count("eventRingSize", fc.EventRingSize, &cfg.EventRingSize)
	count("exemplarsPerSpan", fc.ExemplarsPerSpan, &cfg.ExemplarsPerSpan)
	if err != nil {
		return dispatch.Config{}, err
	}
	if fc.CycleLog != "" {
		// Created (truncated) at startup so a bad path fails loudly before
		// the listener opens; the dispatcher owns the writer afterwards.
		f, ferr := os.Create(fc.CycleLog)
		if ferr != nil {
			return dispatch.Config{}, fmt.Errorf("cycleLog: %w", ferr)
		}
		cfg.CycleLog = f
	}
	if fc.EventLog != "" {
		f, ferr := os.Create(fc.EventLog)
		if ferr != nil {
			return dispatch.Config{}, fmt.Errorf("eventLog: %w", ferr)
		}
		cfg.EventLog = f
	}
	if fc.SlowStartCycles < -1 {
		return dispatch.Config{}, fmt.Errorf("slowStartCycles must be >= -1 (got %d; -1 disables the ramp)", fc.SlowStartCycles)
	}
	if fc.SlowStartCycles != 0 {
		cfg.Breaker.SlowStart = fc.SlowStartCycles
	}
	if fc.AdmitHeadroom < 0 || fc.AdmitHeadroom > 1 {
		return dispatch.Config{}, fmt.Errorf("admitHeadroom must be in [0, 1] (got %v)", fc.AdmitHeadroom)
	}
	cfg.AdmitHeadroom = fc.AdmitHeadroom
	return cfg, nil
}

// parseAdminListen extracts the admin control-plane listener address; empty
// means the admin API is disabled.
func parseAdminListen(raw []byte) (string, error) {
	var fc fileConfig
	if err := json.Unmarshal(raw, &fc); err != nil {
		return "", err
	}
	return fc.AdminListen, nil
}
