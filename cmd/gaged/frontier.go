package main

// Multi-RDN tier membership for a live gaged instance. One instance (the
// one with "leaseListen" set, by convention rdnId 1) hosts the lease table
// behind the loopback TCP service in internal/frontier; every instance —
// including the host — dials it, heartbeats with accounting snapshots of
// the groups it owns, and applies the ownership changes each check returns:
//
//   - a group arriving here simply starts passing the Owns admission gate —
//     every instance is configured with the full subscriber population, so
//     the scheduler already has the definitions and materializes them
//     lazily on first traffic;
//   - a group leaving here stops passing Owns immediately and is marked
//     migrating, so a later drain (Close) withdraws its queued requests as
//     redispatchable handoffs instead of shedding them.
//
// Owns and Fence read the locally cached partition, refreshed every beat:
// live fencing is bounded-staleness (one beat interval), unlike the
// simulator's exact epoch fence — the lease interval is chosen so the
// overlap window is smaller than a queue drain.

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"gage/internal/core"
	"gage/internal/dispatch"
	"gage/internal/frontier"
	"gage/internal/qos"
)

// tierFileConfig is the tier section of the gaged JSON config.
type tierFileConfig struct {
	// RDNCount is the tier size; 0 or 1 runs the classic single front end
	// and every other tier knob must be absent.
	RDNCount int `json:"rdnCount"`
	// RDNID is this instance's id, 1..rdnCount.
	RDNID int `json:"rdnId"`
	// LeaseMillis is the lease interval (default 1000); heartbeats run at a
	// third of it.
	LeaseMillis int `json:"leaseMillis"`
	// LeaseListen makes this instance host the lease table on the address.
	LeaseListen string `json:"leaseListen"`
	// LeaseAddr is the lease service to dial (defaults to leaseListen when
	// this instance hosts it).
	LeaseAddr string `json:"leaseAddr"`
}

func (tc tierFileConfig) enabled() bool { return tc.RDNCount > 1 }

func (tc tierFileConfig) leaseInterval() time.Duration {
	if tc.LeaseMillis == 0 {
		return time.Second
	}
	return time.Duration(tc.LeaseMillis) * time.Millisecond
}

// parseTier extracts and validates the tier knobs.
func parseTier(raw []byte) (tierFileConfig, error) {
	var tc tierFileConfig
	if err := json.Unmarshal(raw, &tc); err != nil {
		return tierFileConfig{}, err
	}
	if tc.RDNCount < 0 {
		return tierFileConfig{}, fmt.Errorf("rdnCount must not be negative (got %d)", tc.RDNCount)
	}
	if tc.LeaseMillis < 0 {
		return tierFileConfig{}, fmt.Errorf("leaseMillis must not be negative (got %d)", tc.LeaseMillis)
	}
	if !tc.enabled() {
		if tc.RDNID != 0 || tc.LeaseListen != "" || tc.LeaseAddr != "" {
			return tierFileConfig{}, fmt.Errorf("rdnId/leaseListen/leaseAddr require rdnCount >= 2 (got rdnCount %d)", tc.RDNCount)
		}
		return tc, nil
	}
	if tc.RDNID < 1 || tc.RDNID > tc.RDNCount {
		return tierFileConfig{}, fmt.Errorf("rdnId must be 1..%d (got %d)", tc.RDNCount, tc.RDNID)
	}
	if tc.LeaseAddr == "" {
		if tc.LeaseListen == "" {
			return tierFileConfig{}, fmt.Errorf("leaseAddr is required (or leaseListen to host the table)")
		}
		tc.LeaseAddr = tc.LeaseListen
	}
	return tc, nil
}

// subscriberGroups returns the distinct tenant groups of the population, in
// sorted order — the lease table's group universe.
func subscriberGroups(subs []qos.Subscriber) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range subs {
		if !seen[s.Group] {
			seen[s.Group] = true
			out = append(out, s.Group)
		}
	}
	sort.Strings(out)
	return out
}

// tierRunner is one instance's live tier membership.
type tierRunner struct {
	cfg    tierFileConfig
	groups []string

	mu    sync.Mutex
	owned map[string]struct{}

	srv      *dispatch.Server // set after dispatch.New
	client   *frontier.Client
	leaseSrv *frontier.Server
	stop     chan struct{}
	done     sync.WaitGroup
}

func newTierRunner(tc tierFileConfig, groups []string) *tierRunner {
	return &tierRunner{
		cfg:    tc,
		groups: groups,
		owned:  make(map[string]struct{}),
		stop:   make(chan struct{}),
	}
}

// owns is the dispatcher's admission gate; fence its relay gate. Both read
// the beat-refreshed cache.
func (tr *tierRunner) owns(group string) bool {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	_, ok := tr.owned[group]
	return ok
}

// start hosts the lease table if configured, dials the service, seeds the
// owned partition, and launches the heartbeat loop.
func (tr *tierRunner) start() error {
	if tr.cfg.LeaseListen != "" {
		tb, err := frontier.NewTable(frontier.Config{
			RDNs:          tr.cfg.RDNCount,
			LeaseInterval: tr.cfg.leaseInterval(),
		}, tr.groups)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", tr.cfg.LeaseListen)
		if err != nil {
			return fmt.Errorf("leaseListen: %w", err)
		}
		tr.leaseSrv = frontier.NewServer(tb)
		srv := tr.leaseSrv
		go func() {
			if err := srv.Serve(ln); err != nil {
				fmt.Println("gaged: lease server:", err)
			}
		}()
	}
	// Peers may come up before the host: retry the dial across one lease
	// interval before giving up.
	var client *frontier.Client
	var err error
	deadline := time.Now().Add(tr.cfg.leaseInterval())
	for {
		client, err = frontier.Dial(tr.cfg.LeaseAddr)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("lease service %s: %w", tr.cfg.LeaseAddr, err)
	}
	tr.client = client
	if err := tr.beat(); err != nil {
		return fmt.Errorf("initial heartbeat: %w", err)
	}
	tr.done.Add(1)
	go func() {
		defer tr.done.Done()
		tick := time.NewTicker(tr.cfg.leaseInterval() / 3)
		defer tick.Stop()
		for {
			select {
			case <-tr.stop:
				return
			case <-tick.C:
				if err := tr.beat(); err != nil {
					fmt.Println("gaged: heartbeat:", err)
				}
			}
		}
	}()
	return nil
}

// beat sends one heartbeat with snapshots of the owned groups, runs lease
// expiry, and applies the resulting ownership changes.
func (tr *tierRunner) beat() error {
	tr.mu.Lock()
	gs := make([]string, 0, len(tr.owned))
	for g := range tr.owned {
		gs = append(gs, g)
	}
	tr.mu.Unlock()
	sort.Strings(gs)
	var snaps map[string][]core.SubscriberState
	if tr.srv != nil && len(gs) > 0 {
		snaps = make(map[string][]core.SubscriberState, len(gs))
		for _, g := range gs {
			if st, err := tr.srv.Scheduler().ExportGroup(g); err == nil {
				snaps[g] = st
			}
		}
	}
	if err := tr.client.Beat(tr.cfg.RDNID, snaps); err != nil {
		return err
	}
	changes, err := tr.client.Check()
	if err != nil {
		return err
	}
	for _, ch := range changes {
		tr.apply(ch)
	}
	// Check hands each ownership change only to the instance whose beat
	// triggered it: a handback observed by the rejoining peer would leave
	// this instance serving the group forever. Reconcile against the
	// table's authoritative partition so every member converges within one
	// beat no matter whose check moved the groups.
	gs, err = tr.client.Partition(tr.cfg.RDNID)
	if err != nil {
		return err
	}
	tr.reconcile(gs)
	return nil
}

// reconcile replaces the cached partition with the table's view, marking
// groups that left as migrating (apply already handled — and logged — the
// changes this instance's own check observed, so only moves first seen by a
// peer's check surface here).
func (tr *tierRunner) reconcile(gs []string) {
	cur := make(map[string]struct{}, len(gs))
	for _, g := range gs {
		cur[g] = struct{}{}
	}
	tr.mu.Lock()
	var lost, gained []string
	for g := range tr.owned {
		if _, ok := cur[g]; !ok {
			lost = append(lost, g)
		}
	}
	for g := range cur {
		if _, ok := tr.owned[g]; !ok {
			gained = append(gained, g)
		}
	}
	tr.owned = cur
	tr.mu.Unlock()
	sort.Strings(lost)
	sort.Strings(gained)
	for _, g := range lost {
		if tr.srv != nil {
			tr.srv.SetMigrating(g)
		}
		fmt.Printf("gaged: released %q to its new owner\n", g)
	}
	for _, g := range gained {
		fmt.Printf("gaged: now serving %q\n", g)
	}
}

func (tr *tierRunner) apply(ch frontier.Change) {
	me := tr.cfg.RDNID
	switch {
	case ch.To == me:
		tr.mu.Lock()
		tr.owned[ch.Group] = struct{}{}
		tr.mu.Unlock()
		fmt.Printf("gaged: %s of %q: now owned (epoch %d, from RDN %d)\n",
			ch.Kind, ch.Group, ch.Epoch, ch.From)
	case ch.From == me:
		tr.mu.Lock()
		delete(tr.owned, ch.Group)
		tr.mu.Unlock()
		// New admissions stop at the Owns gate immediately; what is already
		// queued hands off at the next drain instead of being shed.
		if tr.srv != nil {
			tr.srv.SetMigrating(ch.Group)
		}
		fmt.Printf("gaged: %s of %q: released to RDN %d (epoch %d)\n",
			ch.Kind, ch.Group, ch.To, ch.Epoch)
	}
}

// shutdown stops the heartbeat loop, the client, and the hosted table.
func (tr *tierRunner) shutdown() {
	close(tr.stop)
	tr.done.Wait()
	if tr.client != nil {
		tr.client.Close()
	}
	if tr.leaseSrv != nil {
		tr.leaseSrv.Close()
	}
}
