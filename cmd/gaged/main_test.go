package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gage/internal/qos"
)

func TestParseConfig(t *testing.T) {
	raw := []byte(`{
	  "subscribers": [
	    {"id": "gold", "hosts": ["gold.example", "www.gold.example"], "reservationGRPS": 400, "queueLimit": 64},
	    {"id": "bronze", "hosts": ["bronze.example"], "reservationGRPS": 100}
	  ],
	  "backends": [
	    {"id": 1, "addr": "127.0.0.1:9001"},
	    {"id": 2, "addr": "127.0.0.1:9002"}
	  ],
	  "acctCycleMillis": 250,
	  "schedCycleMillis": 20,
	  "dialTimeoutMillis": 1500,
	  "queueTimeoutMillis": 10000,
	  "retryBackoffMillis": 40,
	  "maxConns": 512,
	  "drainTimeoutMillis": 3000,
	  "clientIdleTimeoutMillis": 45000,
	  "backendTimeoutMillis": 20000,
	  "breakerThreshold": 5,
	  "breakerCooldownMillis": 1500,
	  "slowStartCycles": 8
	}`)
	cfg, err := parseConfig(raw)
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if len(cfg.Subscribers) != 2 {
		t.Fatalf("subscribers = %d, want 2", len(cfg.Subscribers))
	}
	gold := cfg.Subscribers[0]
	if gold.ID != "gold" || gold.Reservation != 400 || gold.QueueLimit != 64 {
		t.Errorf("gold = %+v", gold)
	}
	if len(gold.Hosts) != 2 || gold.Hosts[1] != "www.gold.example" {
		t.Errorf("gold hosts = %v", gold.Hosts)
	}
	if len(cfg.Backends) != 2 || cfg.Backends[1].Addr != "127.0.0.1:9002" {
		t.Errorf("backends = %+v", cfg.Backends)
	}
	if cfg.AcctCycle != 250*time.Millisecond {
		t.Errorf("acct cycle = %v, want 250ms", cfg.AcctCycle)
	}
	if cfg.Scheduler.Cycle != 20*time.Millisecond {
		t.Errorf("sched cycle = %v, want 20ms", cfg.Scheduler.Cycle)
	}
	if cfg.DialTimeout != 1500*time.Millisecond {
		t.Errorf("dial timeout = %v, want 1.5s", cfg.DialTimeout)
	}
	if cfg.QueueTimeout != 10*time.Second {
		t.Errorf("queue timeout = %v, want 10s", cfg.QueueTimeout)
	}
	if cfg.RetryBackoff != 40*time.Millisecond {
		t.Errorf("retry backoff = %v, want 40ms", cfg.RetryBackoff)
	}
	if cfg.MaxConns != 512 {
		t.Errorf("max conns = %d, want 512", cfg.MaxConns)
	}
	if cfg.DrainTimeout != 3*time.Second {
		t.Errorf("drain timeout = %v, want 3s", cfg.DrainTimeout)
	}
	if cfg.ClientIdleTimeout != 45*time.Second {
		t.Errorf("client idle timeout = %v, want 45s", cfg.ClientIdleTimeout)
	}
	if cfg.BackendTimeout != 20*time.Second {
		t.Errorf("backend timeout = %v, want 20s", cfg.BackendTimeout)
	}
	if cfg.Breaker.Threshold != 5 {
		t.Errorf("breaker threshold = %d, want 5", cfg.Breaker.Threshold)
	}
	if cfg.Breaker.Cooldown != 1500*time.Millisecond {
		t.Errorf("breaker cooldown = %v, want 1.5s", cfg.Breaker.Cooldown)
	}
	if cfg.Breaker.SlowStart != 8 {
		t.Errorf("slow-start cycles = %d, want 8", cfg.Breaker.SlowStart)
	}
}

func TestParseConfigSlowStartDisable(t *testing.T) {
	cfg, err := parseConfig([]byte(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}],"slowStartCycles":-1}`))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.Breaker.SlowStart != -1 {
		t.Errorf("slowStartCycles -1 must pass through (ramp disabled), got %d", cfg.Breaker.SlowStart)
	}
}

func TestParseConfigDefaultsAndErrors(t *testing.T) {
	cfg, err := parseConfig([]byte(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}]}`))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.AcctCycle != 0 || cfg.Scheduler.Cycle != 0 {
		t.Errorf("unset cycles must stay zero (library defaults apply): %v %v",
			cfg.AcctCycle, cfg.Scheduler.Cycle)
	}
	if cfg.DialTimeout != 0 || cfg.QueueTimeout != 0 || cfg.RetryBackoff != 0 {
		t.Errorf("unset timeouts must stay zero (library defaults apply): %v %v %v",
			cfg.DialTimeout, cfg.QueueTimeout, cfg.RetryBackoff)
	}
	if cfg.MaxConns != 0 || cfg.DrainTimeout != 0 || cfg.ClientIdleTimeout != 0 || cfg.BackendTimeout != 0 {
		t.Errorf("unset overload knobs must stay zero (library defaults apply): %d %v %v %v",
			cfg.MaxConns, cfg.DrainTimeout, cfg.ClientIdleTimeout, cfg.BackendTimeout)
	}
	if cfg.Breaker.Threshold != 0 || cfg.Breaker.Cooldown != 0 || cfg.Breaker.SlowStart != 0 {
		t.Errorf("unset breaker knobs must stay zero (library defaults apply): %+v", cfg.Breaker)
	}
	if _, err := parseConfig([]byte(`{not json`)); err == nil {
		t.Error("malformed JSON must be rejected")
	}
}

func TestParseConfigTelemetryKnobs(t *testing.T) {
	cfg, err := parseConfig([]byte(`{
	  "subscribers":[{"id":"a"}],
	  "backends":[{"id":1,"addr":"x"}],
	  "traceSampleEvery": 100,
	  "traceBuffer": 512
	}`))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.TraceSampleEvery != 100 {
		t.Errorf("traceSampleEvery = %d, want 100", cfg.TraceSampleEvery)
	}
	if cfg.TraceBuffer != 512 {
		t.Errorf("traceBuffer = %d, want 512", cfg.TraceBuffer)
	}

	cfg, err = parseConfig([]byte(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}]}`))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.TraceSampleEvery != 0 || cfg.TraceBuffer != 0 {
		t.Errorf("unset telemetry knobs must stay zero (tracing off, default buffer): %d %d",
			cfg.TraceSampleEvery, cfg.TraceBuffer)
	}
}

func TestParseConfigFlightRecorderKnobs(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "cycles.jsonl")
	cfg, err := parseConfig([]byte(fmt.Sprintf(`{
	  "subscribers":[{"id":"a"}],
	  "backends":[{"id":1,"addr":"x"}],
	  "cycleRingSize": 2048,
	  "cycleLog": %q,
	  "conformanceWindowMillis": 15000
	}`, logPath)))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.CycleRingSize != 2048 {
		t.Errorf("cycleRingSize = %d, want 2048", cfg.CycleRingSize)
	}
	if cfg.ConformanceWindow != 15*time.Second {
		t.Errorf("conformance window = %v, want 15s", cfg.ConformanceWindow)
	}
	if cfg.CycleLog == nil {
		t.Fatal("cycleLog path must open a spill writer")
	}
	if f, ok := cfg.CycleLog.(*os.File); ok {
		f.Close()
	}
	if _, err := os.Stat(logPath); err != nil {
		t.Errorf("cycle log not created at startup: %v", err)
	}

	cfg, err = parseConfig([]byte(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}]}`))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.CycleRingSize != 0 || cfg.CycleLog != nil || cfg.ConformanceWindow != 0 {
		t.Errorf("unset recorder knobs must stay zero (recording off): %d %v %v",
			cfg.CycleRingSize, cfg.CycleLog, cfg.ConformanceWindow)
	}

	// An unwritable spill path must fail at startup, naming the knob.
	_, err = parseConfig([]byte(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}],"cycleLog":"/nonexistent-dir/cycles.jsonl"}`))
	if err == nil {
		t.Error("unwritable cycleLog path accepted, want error")
	} else if !strings.Contains(err.Error(), "cycleLog") {
		t.Errorf("cycleLog error %q does not name the field", err)
	}
}

// TestParseConfigRejectsNegativeKnobs: a negative timeout or count is never a
// sane default request — it's a typo — and the error must name the offending
// JSON field so the operator can find it.
func TestParseConfigRejectsNegativeKnobs(t *testing.T) {
	knobs := []string{
		"acctCycleMillis",
		"schedCycleMillis",
		"dialTimeoutMillis",
		"queueTimeoutMillis",
		"retryBackoffMillis",
		"drainTimeoutMillis",
		"clientIdleTimeoutMillis",
		"backendTimeoutMillis",
		"breakerCooldownMillis",
		"maxConns",
		"breakerThreshold",
		"traceSampleEvery",
		"traceBuffer",
		"cycleRingSize",
		"conformanceWindowMillis",
		"eventRingSize",
		"exemplarsPerSpan",
	}
	for _, knob := range knobs {
		raw := fmt.Sprintf(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}],%q:-7}`, knob)
		_, err := parseConfig([]byte(raw))
		if err == nil {
			t.Errorf("%s: negative value accepted, want error", knob)
			continue
		}
		if !strings.Contains(err.Error(), knob) {
			t.Errorf("%s: error %q does not name the offending field", knob, err)
		}
	}

	// slowStartCycles is special: -1 is the documented ramp-off switch
	// (covered elsewhere), anything below it is a typo.
	if _, err := parseConfig([]byte(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}],"slowStartCycles":-2}`)); err == nil {
		t.Error("slowStartCycles=-2 accepted, want error")
	} else if !strings.Contains(err.Error(), "slowStartCycles") {
		t.Errorf("slowStartCycles error %q does not name the field", err)
	}

	// Per-subscriber knobs carry the subscriber ID in the error.
	if _, err := parseConfig([]byte(`{"subscribers":[{"id":"a","reservationGRPS":-5}],"backends":[{"id":1,"addr":"x"}]}`)); err == nil {
		t.Error("negative reservationGRPS accepted, want error")
	} else if !strings.Contains(err.Error(), "reservationGRPS") || !strings.Contains(err.Error(), `"a"`) {
		t.Errorf("reservation error %q must name the field and subscriber", err)
	}
	if _, err := parseConfig([]byte(`{"subscribers":[{"id":"a","queueLimit":-1}],"backends":[{"id":1,"addr":"x"}]}`)); err == nil {
		t.Error("negative queueLimit accepted, want error")
	} else if !strings.Contains(err.Error(), "queueLimit") {
		t.Errorf("queueLimit error %q must name the field", err)
	}
}

func TestParseConfigAdminKnobs(t *testing.T) {
	cfg, err := parseConfig([]byte(`{
	  "subscribers":[{"id":"a"}],
	  "backends":[{"id":1,"addr":"x"}],
	  "admitHeadroom": 0.85
	}`))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.AdmitHeadroom != 0.85 {
		t.Errorf("admitHeadroom = %v, want 0.85", cfg.AdmitHeadroom)
	}

	cfg, err = parseConfig([]byte(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}]}`))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.AdmitHeadroom != 0 {
		t.Errorf("unset admitHeadroom must stay zero (policy default applies): %v", cfg.AdmitHeadroom)
	}

	for _, bad := range []string{"-0.1", "1.5"} {
		raw := fmt.Sprintf(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}],"admitHeadroom":%s}`, bad)
		if _, err := parseConfig([]byte(raw)); err == nil {
			t.Errorf("admitHeadroom=%s accepted, want error", bad)
		} else if !strings.Contains(err.Error(), "admitHeadroom") {
			t.Errorf("admitHeadroom error %q does not name the field", err)
		}
	}

	addr, err := parseAdminListen([]byte(`{"adminListen":"127.0.0.1:8081"}`))
	if err != nil {
		t.Fatalf("parseAdminListen: %v", err)
	}
	if addr != "127.0.0.1:8081" {
		t.Errorf("adminListen = %q, want 127.0.0.1:8081", addr)
	}
	if addr, _ := parseAdminListen([]byte(`{}`)); addr != "" {
		t.Errorf("unset adminListen = %q, want empty (admin API off)", addr)
	}
}

func TestParseTier(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr bool
	}{
		{"disabled", `{}`, false},
		{"singleIsDisabled", `{"rdnCount": 1}`, false},
		{"negativeCount", `{"rdnCount": -1}`, true},
		{"negativeLease", `{"rdnCount": 3, "rdnId": 1, "leaseAddr": "x", "leaseMillis": -5}`, true},
		{"tierKnobsWithoutTier", `{"rdnId": 2}`, true},
		{"idOutOfRange", `{"rdnCount": 3, "rdnId": 4, "leaseAddr": "x"}`, true},
		{"idMissing", `{"rdnCount": 3, "leaseAddr": "x"}`, true},
		{"addrMissing", `{"rdnCount": 3, "rdnId": 2}`, true},
		{"member", `{"rdnCount": 3, "rdnId": 2, "leaseAddr": "127.0.0.1:7070"}`, false},
		{"host", `{"rdnCount": 3, "rdnId": 1, "leaseListen": "127.0.0.1:7070"}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseTier([]byte(tc.json))
			if (err != nil) != tc.wantErr {
				t.Fatalf("parseTier(%s) error = %v, wantErr %v", tc.json, err, tc.wantErr)
			}
			if err != nil {
				return
			}
			if tc.name == "host" && got.LeaseAddr != got.LeaseListen {
				t.Errorf("host: leaseAddr %q, want defaulted to leaseListen %q", got.LeaseAddr, got.LeaseListen)
			}
			if tc.name == "member" && got.leaseInterval() != time.Second {
				t.Errorf("leaseInterval = %v, want default 1s", got.leaseInterval())
			}
		})
	}
}

func TestSubscriberGroups(t *testing.T) {
	subs := []qos.Subscriber{
		{ID: "b1", Group: "tierB"},
		{ID: "a1", Group: "tierA"},
		{ID: "a2", Group: "tierA"},
	}
	got := subscriberGroups(subs)
	want := []string{"tierA", "tierB"}
	if len(got) != len(want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("groups = %v, want %v", got, want)
		}
	}
}

// TestParseConfigEventBusKnobs: the unified-event-bus knobs reach the
// dispatcher config, the spill file is created at startup, an unwritable
// path fails loudly, and unset knobs leave the bus off.
func TestParseConfigEventBusKnobs(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "events.jsonl")
	cfg, err := parseConfig([]byte(fmt.Sprintf(`{
	  "subscribers": [{"id": "a", "hosts": ["a.example"], "reservationGRPS": 10}],
	  "backends": [{"id": 1, "addr": "127.0.0.1:9001"}],
	  "eventRingSize": 4096,
	  "eventLog": %q,
	  "exemplarsPerSpan": 6
	}`, logPath)))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.EventRingSize != 4096 {
		t.Errorf("eventRingSize = %d, want 4096", cfg.EventRingSize)
	}
	if cfg.ExemplarsPerSpan != 6 {
		t.Errorf("exemplarsPerSpan = %d, want 6", cfg.ExemplarsPerSpan)
	}
	if cfg.EventLog == nil {
		t.Fatal("eventLog path must open a spill writer")
	}
	if f, ok := cfg.EventLog.(*os.File); ok {
		f.Close()
	}
	if _, err := os.Stat(logPath); err != nil {
		t.Errorf("event log not created at startup: %v", err)
	}

	cfg, err = parseConfig([]byte(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}]}`))
	if err != nil {
		t.Fatalf("parseConfig: %v", err)
	}
	if cfg.EventRingSize != 0 || cfg.EventLog != nil || cfg.ExemplarsPerSpan != 0 {
		t.Errorf("unset event-bus knobs must stay zero (bus off): %d %v %d",
			cfg.EventRingSize, cfg.EventLog, cfg.ExemplarsPerSpan)
	}

	_, err = parseConfig([]byte(`{"subscribers":[{"id":"a"}],"backends":[{"id":1,"addr":"x"}],"eventLog":"/nonexistent-dir/events.jsonl"}`))
	if err == nil {
		t.Error("unwritable eventLog path accepted, want error")
	} else if !strings.Contains(err.Error(), "eventLog") {
		t.Errorf("eventLog error %q does not name the field", err)
	}
}
