package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gage/internal/qos"
	"gage/internal/workload"
)

func TestGenStatsReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")

	var out bytes.Buffer
	err := run([]string{
		"gen", "-kind", "specweb", "-host", "www.site1.example", "-sub", "site1",
		"-rate", "80", "-duration", "4s", "-seed", "3", "-out", trace,
	}, &out)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Errorf("gen output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"stats", trace}, &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "site1") || !strings.Contains(s, "req/s") {
		t.Errorf("stats output = %q", s)
	}

	out.Reset()
	if err := run([]string{"replay", "-rpns", "2", "-grps", "120", trace}, &out); err != nil {
		t.Fatalf("replay: %v", err)
	}
	s = out.String()
	if !strings.Contains(s, "site1") || !strings.Contains(s, "cluster:") {
		t.Errorf("replay output = %q", s)
	}
}

func TestGenToStdout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"gen", "-kind", "generic", "-rate", "50", "-duration", "1s"}, &out)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	reqs, err := workload.ReadTrace(&out)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(reqs) != 49 {
		t.Errorf("generated %d requests, want 49", len(reqs))
	}
	for _, r := range reqs {
		if r.Cost != qos.GenericCost() {
			t.Fatalf("generic trace cost = %v", r.Cost)
		}
	}
}

func TestMakeGenerator(t *testing.T) {
	for _, kind := range []string{"specweb", "generic", "sixkb", "cgi"} {
		gen, err := makeGenerator(kind, "h", 1)
		if err != nil {
			t.Errorf("makeGenerator(%q): %v", kind, err)
			continue
		}
		r := gen.Next()
		if r.Cost.IsZero() {
			t.Errorf("%q generated zero-cost request", kind)
		}
	}
	if _, err := makeGenerator("bogus", "h", 1); err == nil {
		t.Error("unknown kind must be rejected")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown command must fail")
	}
	if err := run([]string{"stats"}, &out); err == nil {
		t.Error("stats without a file must fail")
	}
	if err := run([]string{"replay", "/nonexistent"}, &out); err == nil {
		t.Error("replay of a missing file must fail")
	}
}

func TestStatsEmptyTrace(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	var out bytes.Buffer
	if err := run([]string{"stats", empty}, &out); err == nil {
		t.Error("empty trace must be rejected")
	}
}

func TestReplayShorterThanWarmup(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "short.jsonl")
	reqs := []workload.Request{{
		ID: 1, Subscriber: "a", Host: "a.example",
		Cost: qos.GenericCost(), Arrival: 100 * time.Millisecond,
	}}
	f, err := os.Create(trace)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := workload.WriteTrace(f, reqs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"replay", "-warmup", "10s", trace}, &out); err == nil {
		t.Error("trace shorter than warmup must be rejected")
	}
}
