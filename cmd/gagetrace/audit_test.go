package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gage/internal/cluster"
	"gage/internal/flightrec"
	"gage/internal/qos"
	"gage/internal/workload"
)

// TestConformanceGolden is the tentpole acceptance test: a SPECweb99 trace
// runs through the simulator with the flight recorder attached, and an
// offline audit of the recorded cycle log must agree with the simulator's
// own metrics.Series Figure-3 deviation to within 1% — the recorder and
// auditor see the same feedback loop the measurement harness does.
func TestConformanceGolden(t *testing.T) {
	arr, err := workload.NewPoisson(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	src := workload.Source{
		Subscriber: "spec",
		Gen:        workload.NewSPECWeb99("spec.example", 99),
		Arrivals:   arr,
	}
	reqs, _ := src.Schedule(6*time.Second, 1)
	if len(reqs) == 0 {
		t.Fatal("empty SPECweb99 schedule")
	}

	dir := t.TempDir()
	cyclesPath := filepath.Join(dir, "cycles.jsonl")
	f, err := os.Create(cyclesPath)
	if err != nil {
		t.Fatal(err)
	}
	rec := flightrec.NewRecorder(flightrec.Config{Spill: f})
	const warmup = time.Second
	res, err := replay(reqs, 2, 60, warmup, rec, nil, nil, 0)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := rec.SpillErr(); err != nil {
		t.Fatalf("spill: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	logFile, err := os.Open(cyclesPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := flightrec.ReadLog(logFile)
	logFile.Close()
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	rep := flightrec.Replay(recs, flightrec.AuditorConfig{Skip: warmup})
	sub, ok := rep.Sub("spec")
	if !ok {
		t.Fatal("audit lost subscriber spec")
	}
	if !sub.DeviationOK {
		t.Fatal("audit deviation unavailable over a 5 s measured window")
	}
	want, err := res.ObservedDeviation("spec", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sub.Deviation-want) > 0.01 {
		t.Errorf("audit deviation %.4f vs simulator %.4f, want within 1%%", sub.Deviation, want)
	}

	// The CLI view of the same log: ratios, the deviation column, no
	// violations for an underloaded subscriber.
	var out bytes.Buffer
	if err := run([]string{"audit", "-warmup", "1s", cyclesPath}, &out); err != nil {
		t.Fatalf("audit: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "spec") || !strings.Contains(s, "deviation") {
		t.Errorf("audit output = %q", s)
	}
	if strings.Contains(s, "violation:") {
		t.Errorf("audit reported violations for an underloaded run:\n%s", s)
	}
}

// constSource builds a constant-rate fixed-cost source (the Table-1 client).
func constSource(t *testing.T, sub qos.SubscriberID, host string, rate float64) workload.Source {
	t.Helper()
	arr, err := workload.NewConstantRate(rate)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Source{
		Subscriber: sub,
		Gen:        workload.NewFixed(host, "/index.html", qos.GenericCost()),
		Arrivals:   arr,
	}
}

// TestAuditTable1Overload recreates the paper's Table-1 overload scenario
// (site3 offered almost eight times its reservation while the cluster is
// saturated) at a shortened duration and audits the recorded cycle log with
// live burn-rate windows: the reserved traffic must show zero violation
// spans, and the overloaded subscriber must be the one absorbing the spare
// round — spare capacity follows the reservation-proportional sharing of
// §4.1, not the overload.
func TestAuditTable1Overload(t *testing.T) {
	var spill bytes.Buffer
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 64, Spill: &spill})
	const (
		warmup = 2 * time.Second
		dur    = 10 * time.Second
	)
	_, err := cluster.Run(cluster.Options{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"site1.example"}, Reservation: 250, QueueLimit: 128},
			{ID: "site2", Hosts: []string{"site2.example"}, Reservation: 150, QueueLimit: 128},
			{ID: "site3", Hosts: []string{"site3.example"}, Reservation: 50, QueueLimit: 128},
		},
		Sources: []workload.Source{
			constSource(t, "site1", "site1.example", 259.4),
			constSource(t, "site2", "site2.example", 161.1),
			constSource(t, "site3", "site3.example", 390.3),
		},
		NumRPNs:  8,
		RPNSpeed: 0.9825,
		Recorder: rec,
		Warmup:   warmup,
		Duration: dur,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs, err := flightrec.ReadLog(&spill)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	rep := flightrec.Replay(recs, flightrec.AuditorConfig{
		Window:     2 * time.Second,
		FastWindow: 200 * time.Millisecond,
		Skip:       warmup,
	})
	for _, id := range []qos.SubscriberID{"site1", "site2", "site3"} {
		sub, ok := rep.Sub(id)
		if !ok {
			t.Fatalf("audit lost %s", id)
		}
		if sub.Violations != 0 {
			t.Errorf("%s: %d violation spans under a held guarantee: %+v", id, sub.Violations, sub.Spans)
		}
		if sub.SlowRatio < 0.95 {
			t.Errorf("%s: slow conformance ratio %.3f, want >= 0.95 (reservation held)", id, sub.SlowRatio)
		}
	}
	site3, _ := rep.Sub("site3")
	if site3.SpareShare < 0.7 {
		t.Errorf("site3 spare share %.3f, want > 0.7 (the overloaded site absorbs the spare round)", site3.SpareShare)
	}
	site1, _ := rep.Sub("site1")
	if site1.SpareShare > 0.2 {
		t.Errorf("site1 spare share %.3f, want small (its demand barely exceeds its reservation)", site1.SpareShare)
	}
}
