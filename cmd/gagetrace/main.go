// Command gagetrace generates, inspects and replays workload traces — the
// record/replay role SPECWeb99 trace files play in the paper's evaluation.
//
// Usage:
//
//	gagetrace gen  -kind specweb -host www.site1.example -sub site1 \
//	               -rate 100 -duration 10s -seed 1 -out trace.jsonl
//	gagetrace stats  trace.jsonl
//	gagetrace replay -rpns 4 -grps 100 -cycles cycles.jsonl -events events.jsonl trace.jsonl
//	gagetrace audit  -warmup 1s cycles.jsonl
//	gagetrace audit  -warmup 1s drill.rdn1.jsonl drill.rdn2.jsonl drill.rdn3.jsonl
//	gagetrace lint   events.jsonl
//	gagetrace explain -cycles cycles.jsonl -warmup 1s site1 events.jsonl
//
// gen writes a JSON-lines trace; stats summarizes it; replay runs it
// through the cluster simulator under Gage scheduling and prints the
// per-subscriber outcome, including the paper's Figure-3 deviation
// statistic, optionally spilling the scheduler's per-cycle flight-recorder
// log; audit replays such a cycle log (from replay -cycles or a live
// dispatcher's cycleLog) through the guarantee-conformance auditor and
// prints per-subscriber window ratios, deviations and violation spans.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"gage/internal/cluster"
	"gage/internal/flightrec"
	"gage/internal/metrics"
	"gage/internal/obs"
	"gage/internal/qos"
	"gage/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gagetrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gagetrace gen|stats|replay [flags] [trace file]")
	}
	switch args[0] {
	case "gen":
		return genCmd(args[1:], out)
	case "stats":
		return statsCmd(args[1:], out)
	case "replay":
		return replayCmd(args[1:], out)
	case "audit":
		return auditCmd(args[1:], out)
	case "explain":
		return explainCmd(args[1:], out)
	case "lint":
		return lintCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q (try gen, stats, replay, audit, explain, lint)", args[0])
	}
}

func genCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "specweb", "workload kind: specweb, generic, sixkb, cgi")
		host     = fs.String("host", "www.site1.example", "virtual host of the requests")
		sub      = fs.String("sub", "site1", "subscriber ID of the requests")
		rate     = fs.Float64("rate", 100, "requests per second")
		duration = fs.Duration("duration", 10*time.Second, "trace length")
		seed     = fs.Int64("seed", 1, "generator seed")
		poisson  = fs.Bool("poisson", false, "Poisson arrivals instead of constant rate")
		outPath  = fs.String("out", "", "output file (stdout if empty)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	gen, err := makeGenerator(*kind, *host, *seed)
	if err != nil {
		return err
	}
	var arrivals workload.Arrivals
	if *poisson {
		arrivals, err = workload.NewPoisson(*rate, *seed)
	} else {
		arrivals, err = workload.NewConstantRate(*rate)
	}
	if err != nil {
		return err
	}
	src := workload.Source{Subscriber: qos.SubscriberID(*sub), Gen: gen, Arrivals: arrivals}
	reqs, _ := src.Schedule(*duration, 1)

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTrace(w, reqs); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(out, "wrote %d requests to %s\n", len(reqs), *outPath)
	}
	return nil
}

func makeGenerator(kind, host string, seed int64) (workload.Generator, error) {
	switch kind {
	case "specweb":
		return workload.NewSPECWeb99(host, seed), nil
	case "generic":
		return workload.NewGeneric(host), nil
	case "sixkb":
		return workload.NewStaticPage(host, workload.SixKBPage), nil
	case "cgi":
		static := workload.DefaultCostModel().Cost(4 * 1024)
		cgi := qos.Vector{CPUTime: 30 * time.Millisecond, DiskTime: 5 * time.Millisecond, NetBytes: 6000}
		return workload.NewCGIMix(host, seed, 0.3, static, cgi), nil
	default:
		return nil, fmt.Errorf("unknown workload kind %q", kind)
	}
}

func statsCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reqs, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(reqs) == 0 {
		return fmt.Errorf("trace is empty")
	}
	span := reqs[len(reqs)-1].Arrival - reqs[0].Arrival
	perSub := make(map[qos.SubscriberID]int)
	var units []float64
	for _, r := range reqs {
		perSub[r.Subscriber]++
		units = append(units, r.GenericUnits())
	}
	fmt.Fprintf(out, "requests: %d over %v (%.1f req/s)\n",
		len(reqs), span.Round(time.Millisecond), float64(len(reqs))/span.Seconds())
	subs := make([]string, 0, len(perSub))
	for id := range perSub {
		subs = append(subs, string(id))
	}
	sort.Strings(subs)
	for _, id := range subs {
		fmt.Fprintf(out, "  %-12s %6d requests\n", id, perSub[qos.SubscriberID(id)])
	}
	fmt.Fprintf(out, "cost (generic units/request): mean %.2f, p50 %.2f, p95 %.2f, max %.2f\n",
		metrics.Mean(units), metrics.Percentile(units, 50),
		metrics.Percentile(units, 95), metrics.Percentile(units, 100))
	return nil
}

func replayCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		rpns     = fs.Int("rpns", 4, "back-end cluster size")
		grps     = fs.Float64("grps", 100, "reservation per subscriber (GRPS)")
		warmup   = fs.Duration("warmup", time.Second, "measurement warmup")
		interval = fs.Duration("interval", time.Second, "deviation averaging interval")
		cycles   = fs.String("cycles", "", "spill the scheduler's per-cycle flight-recorder log to this JSONL file")
		events   = fs.String("events", "", "spill the unified observability event log to this JSONL file")
		traceN   = fs.Uint64("trace-every", 8, "with -events, sample every Nth request for span events (0 = none)")
		window   = fs.Duration("window", 2*time.Second, "with -events and -cycles, the live auditor's slow window")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reqs, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(reqs) == 0 {
		return fmt.Errorf("trace is empty")
	}
	var rec *flightrec.Recorder
	if *cycles != "" {
		f, err := os.Create(*cycles)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = flightrec.NewRecorder(flightrec.Config{Spill: f})
	}
	var bus *obs.Bus
	var auditor *flightrec.Auditor
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		bus = obs.NewBus(obs.BusConfig{RingSize: 256, Spill: f})
		if rec != nil {
			// A live auditor mirrors violation spans onto the bus at their
			// exact virtual offsets, so `explain` can line them up with the
			// faults, breaker flips and span events around them.
			auditor = flightrec.NewAuditor(rec, flightrec.AuditorConfig{
				Window: *window,
				Skip:   *warmup,
			})
			auditor.SetBus(bus)
		}
	}
	res, err := replay(reqs, *rpns, qos.GRPS(*grps), *warmup, rec, bus, auditor, *traceN)
	if err != nil {
		return err
	}
	if rec != nil {
		if err := rec.SpillErr(); err != nil {
			return fmt.Errorf("cycle log: %w", err)
		}
	}
	if bus != nil {
		if err := bus.SpillErr(); err != nil {
			return fmt.Errorf("event log: %w", err)
		}
	}
	fmt.Fprintf(out, "%-12s %10s %10s %10s %12s %10s\n",
		"subscriber", "offered", "served", "dropped", "p95 latency", "deviation")
	for _, row := range res.Rows {
		dev := "-"
		if d, err := res.ObservedDeviation(row.ID, *interval); err == nil {
			dev = fmt.Sprintf("%.1f%%", d*100)
		}
		fmt.Fprintf(out, "%-12s %10.1f %10.1f %10.1f %12s %10s\n",
			row.ID, row.Offered, row.Served, row.Dropped,
			row.P95Latency.Round(time.Millisecond), dev)
	}
	fmt.Fprintf(out, "cluster: %.1f req/s served\n", res.ServedReqPerSec)
	if *cycles != "" {
		fmt.Fprintf(out, "cycle log: %d records to %s\n", rec.Seq(), *cycles)
	}
	if *events != "" {
		fmt.Fprintf(out, "event log: %d events to %s\n", bus.Seq(), *events)
	}
	return nil
}

// replay runs a trace through the cluster simulator: subscribers are
// derived from the trace, each with the same reservation, and the trace's
// host names classify the requests back to them. A non-nil recorder spills
// the scheduler's per-cycle state for offline auditing; a non-nil bus
// additionally streams the unified event log (span events for every
// traceEvery-th request, plus a non-nil auditor's live violation spans).
func replay(reqs []workload.Request, rpns int, grps qos.GRPS, warmup time.Duration,
	rec *flightrec.Recorder, bus *obs.Bus, auditor *flightrec.Auditor, traceEvery uint64) (*cluster.Result, error) {
	hosts := make(map[qos.SubscriberID]map[string]bool)
	var last time.Duration
	for _, r := range reqs {
		if hosts[r.Subscriber] == nil {
			hosts[r.Subscriber] = make(map[string]bool)
		}
		hosts[r.Subscriber][r.Host] = true
		if r.Arrival > last {
			last = r.Arrival
		}
	}
	var subs []qos.Subscriber
	ids := make([]string, 0, len(hosts))
	for id := range hosts {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		var hs []string
		for h := range hosts[qos.SubscriberID(id)] {
			hs = append(hs, h)
		}
		sort.Strings(hs)
		subs = append(subs, qos.Subscriber{
			ID:          qos.SubscriberID(id),
			Hosts:       hs,
			Reservation: grps,
			QueueLimit:  512,
		})
	}
	run := last + time.Second
	measured := run - warmup
	if measured <= 0 {
		return nil, fmt.Errorf("trace shorter than warmup %v", warmup)
	}
	return cluster.Run(cluster.Options{
		Subscribers: subs,
		ReplayTrace: reqs,
		NumRPNs:     rpns,
		Recorder:    rec,
		Bus:         bus,
		Auditor:     auditor,
		TraceEvery:  traceEvery,
		Warmup:      warmup,
		Duration:    measured,
	})
}

func auditCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	var (
		interval = fs.Duration("interval", time.Second, "deviation averaging interval")
		window   = fs.Duration("window", 0, "slow sliding window (0 = the whole log)")
		fast     = fs.Duration("fast", 0, "fast burn-rate window (default window/10; violation detection needs a bounded fast window)")
		warmup   = fs.Duration("warmup", 0, "skip records before this offset (match the run's warmup)")
		ratio    = fs.Float64("ratio", flightrec.DefaultRatio, "conformance threshold: delivered/reserved below this in both windows is a violation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.Arg(0) == "" {
		return fmt.Errorf("cycle log file required")
	}
	// Several logs (one per front end in a multi-RDN tier) merge into one
	// stream, stably ordered by offset, so the auditor sees the tier's
	// interleaved timeline — each instance's records stay in order, which is
	// all its per-RDN conformance tracking needs.
	var recs []flightrec.CycleRecord
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		part, err := flightrec.ReadLog(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		recs = append(recs, part...)
	}
	if len(recs) == 0 {
		return fmt.Errorf("cycle log is empty")
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
	rep := flightrec.Replay(recs, flightrec.AuditorConfig{
		Window:     *window,
		FastWindow: *fast,
		Interval:   *interval,
		Ratio:      *ratio,
		Skip:       *warmup,
	})
	span := recs[len(recs)-1].At - recs[0].At
	fmt.Fprintf(out, "cycles: %d records over %v (audited %d, at %v)\n",
		len(recs), span.Round(time.Millisecond), rep.Records, rep.At.Round(time.Millisecond))
	fmt.Fprintf(out, "%-12s %8s %10s %6s %6s %10s %10s %7s %5s\n",
		"subscriber", "res", "delivered", "fast", "slow", "deviation", "worst dev", "spare%", "viol")
	for _, sub := range rep.Subs {
		dev, worst := "-", "-"
		if sub.DeviationOK {
			dev = fmt.Sprintf("%.1f%%", sub.Deviation*100)
			worst = fmt.Sprintf("%.1f%%", sub.WorstDeviation*100)
		}
		fmt.Fprintf(out, "%-12s %8.0f %10.1f %6.2f %6.2f %10s %10s %6.1f%% %5d\n",
			sub.ID, float64(sub.Reservation), sub.Delivered,
			sub.FastRatio, sub.SlowRatio, dev, worst, sub.SpareShare*100, sub.Violations)
	}
	for _, sub := range rep.Subs {
		for _, sp := range sub.Spans {
			state := "closed"
			if sp.Open {
				state = "OPEN"
			}
			fmt.Fprintf(out, "violation: %-12s %v .. %v (%s)\n",
				sub.ID, sp.Start.Round(time.Millisecond), sp.End.Round(time.Millisecond), state)
		}
	}
	var takeovers int
	for _, ev := range rep.Events {
		e := ev.Event
		switch e.Kind {
		case "takeover", "handback":
			fmt.Fprintf(out, "tier event: %8v rdn %d: %s %s RDN %d -> RDN %d (epoch %d)\n",
				ev.At.Round(time.Millisecond), ev.RDN, e.Kind, e.Group, e.From, e.To, e.Epoch)
			if e.Kind == "takeover" {
				takeovers++
			}
		default:
			fmt.Fprintf(out, "tier event: %8v rdn %d: %s\n",
				ev.At.Round(time.Millisecond), ev.RDN, e.Kind)
		}
	}
	if takeovers > 0 {
		fmt.Fprintf(out, "tier verdict: %d takeover(s) in the stream; partitions with zero\n", takeovers)
		fmt.Fprintf(out, "              violation spans above were untouched by the failover\n")
	}
	return nil
}

func loadTrace(path string) ([]workload.Request, error) {
	if path == "" {
		return nil, fmt.Errorf("trace file required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadTrace(f)
}
