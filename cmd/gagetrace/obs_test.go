package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// obsPipeline generates an infeasible-reservation trace, replays it with
// the unified event log on, and returns the spilled cycle and event log
// paths — the guarantee genuinely breaks (1 RPN cannot deliver 5000 GRPS),
// so the auditor opens violation spans with exemplars.
func obsPipeline(t *testing.T) (dir, cycles, events string) {
	t.Helper()
	dir = t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	cycles = filepath.Join(dir, "cycles.jsonl")
	events = filepath.Join(dir, "events.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"gen", "-kind", "specweb", "-host", "www.site1.example", "-sub", "site1",
		"-rate", "300", "-duration", "5s", "-seed", "3", "-out", trace,
	}, &out)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	out.Reset()
	err = run([]string{
		"replay", "-rpns", "1", "-grps", "5000", "-warmup", "1s", "-window", "2s",
		"-cycles", cycles, "-events", events, trace,
	}, &out)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "event log:") {
		t.Errorf("replay output missing event log line: %q", s)
	}
	return dir, cycles, events
}

// TestLintAndExplainPipeline: replay -events spills a lint-clean event log,
// and explain reconstructs a violation story from it — span header,
// exemplars, and at least one full classify→settle hop sequence.
func TestLintAndExplainPipeline(t *testing.T) {
	_, cycles, events := obsPipeline(t)

	var out bytes.Buffer
	if err := run([]string{"lint", events}, &out); err != nil {
		t.Fatalf("lint: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "ok ") || !strings.Contains(s, "schema 1") {
		t.Errorf("lint output = %q", s)
	}

	out.Reset()
	err := run([]string{
		"explain", "-cycles", cycles, "-warmup", "1s", "-window", "2s",
		"site1", events,
	}, &out)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	story := out.String()
	for _, want := range []string{
		"subscriber site1: violation span 1/",
		"reservation 5000 GRPS",
		"exemplar ",
		"classify",
		"dispatch",
		"settle",
	} {
		if !strings.Contains(story, want) {
			t.Errorf("explain story missing %q:\n%s", want, story)
		}
	}

	// -span selects a later span; an out-of-range index is an error.
	out.Reset()
	err = run([]string{
		"explain", "-cycles", cycles, "-warmup", "1s", "-window", "2s", "-span", "1",
		"site1", events,
	}, &out)
	if err != nil {
		t.Fatalf("explain -span 1: %v", err)
	}
	if !strings.Contains(out.String(), "violation span 2/") {
		t.Errorf("explain -span 1 output = %q", out.String())
	}
	if err := run([]string{
		"explain", "-cycles", cycles, "-warmup", "1s", "-window", "2s", "-span", "99",
		"site1", events,
	}, &out); err == nil {
		t.Error("out-of-range span index must fail")
	}
}

// TestLintRejectsCorruptLog: a log with a broken invariant (an unknown
// event kind) fails the lint with a file-qualified error.
func TestLintRejectsCorruptLog(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	line := `{"schema":1,"seq":0,"at":1000,"kind":99}` + "\n"
	if err := os.WriteFile(bad, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"lint", bad}, &out)
	if err == nil {
		t.Fatal("lint of a corrupt log must fail")
	}
	if !strings.Contains(err.Error(), "bad.jsonl") {
		t.Errorf("lint error %q does not name the file", err)
	}
}

// TestObsCommandErrors pins the argument contracts of the new commands.
func TestObsCommandErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"lint"}, &out); err == nil {
		t.Error("lint without files must fail")
	}
	if err := run([]string{"explain", "site1", "x.jsonl"}, &out); err == nil {
		t.Error("explain without -cycles must fail")
	}
	if err := run([]string{"explain", "-cycles", "c.jsonl"}, &out); err == nil {
		t.Error("explain without a subscriber must fail")
	}
	if err := run([]string{"explain", "-cycles", "c.jsonl", "site1"}, &out); err == nil {
		t.Error("explain without event logs must fail")
	}
}
