// Observability subcommands: the unified-event-log half of gagetrace.
//
//	gagetrace replay  -cycles cycles.jsonl -events events.jsonl trace.jsonl
//	gagetrace lint    events.jsonl [more.jsonl ...]
//	gagetrace explain -cycles cycles.jsonl [-span N] site1 events.jsonl [more.jsonl ...]
//
// replay -events spills the run's unified event log (request spans, cycle
// and tier records, faults, breaker flips, guarantee violations) next to
// the cycle log; lint checks spilled logs against the event schema's
// invariants; explain merges per-RDN event logs and reconstructs the
// causal story behind one subscriber's violation span — the coinciding
// cluster events and each exemplar request's full hop-by-hop path.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gage/internal/flightrec"
	"gage/internal/obs"
	"gage/internal/qos"
)

// explainCmd renders the causal story of one violation span from a cycle
// log and one or more (per-RDN) unified event logs.
func explainCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	var (
		cycles   = fs.String("cycles", "", "cycle log(s), comma-separated for a multi-RDN tier")
		span     = fs.Int("span", 0, "violation span index for the subscriber (0 = first)")
		margin   = fs.Duration("margin", 0, "coinciding-event window beyond the span edges (default 2s)")
		window   = fs.Duration("window", 0, "slow sliding window (0 = the whole log)")
		fast     = fs.Duration("fast", 0, "fast burn-rate window (default window/10)")
		warmup   = fs.Duration("warmup", 0, "skip records before this offset (match the run's warmup)")
		ratio    = fs.Float64("ratio", flightrec.DefaultRatio, "conformance threshold")
		interval = fs.Duration("interval", 0, "deviation averaging interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cycles == "" {
		return fmt.Errorf("explain: -cycles cycle log required")
	}
	sub := fs.Arg(0)
	if sub == "" {
		return fmt.Errorf("explain: subscriber required")
	}
	evPaths := fs.Args()[1:]
	if len(evPaths) == 0 {
		return fmt.Errorf("explain: at least one event log required")
	}
	recs, err := readCycleLogs(strings.Split(*cycles, ","))
	if err != nil {
		return err
	}
	logs := make([][]obs.Event, 0, len(evPaths))
	for _, path := range evPaths {
		evs, err := readEventLog(path)
		if err != nil {
			return err
		}
		logs = append(logs, evs)
	}
	story, err := flightrec.Explain(recs, obs.MergeLogs(logs...), qos.SubscriberID(sub),
		flightrec.ExplainOptions{Span: *span, Margin: *margin},
		flightrec.AuditorConfig{
			Window:     *window,
			FastWindow: *fast,
			Interval:   *interval,
			Ratio:      *ratio,
			Skip:       *warmup,
		})
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, story)
	return err
}

// lintCmd checks each spilled event log against the schema invariants:
// known kinds, per-RDN monotone sequence and time, span events carrying
// trace identity, at most one terminal settle per trace per RDN.
func lintCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.Arg(0) == "" {
		return fmt.Errorf("lint: at least one event log required")
	}
	for _, path := range fs.Args() {
		evs, err := readEventLog(path)
		if err != nil {
			return err
		}
		if err := obs.LintLog(evs); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "ok %s: %d events (schema %d)\n", path, len(evs), obs.SchemaVersion)
	}
	return nil
}

// readEventLog reads one spilled JSONL event log.
func readEventLog(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := obs.ReadLog(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}

// readCycleLogs reads and At-merges one or more cycle logs (one per RDN in
// a multi-RDN tier), the same stable interleave the audit command uses.
func readCycleLogs(paths []string) ([]flightrec.CycleRecord, error) {
	var recs []flightrec.CycleRecord
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		part, err := flightrec.ReadLog(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		recs = append(recs, part...)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("cycle log is empty")
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
	return recs, nil
}
