// Command rpnsim runs one simulated back-end request processing node (RPN):
// a web server that answers synthetic page requests with modeled resource
// costs and serves per-cycle accounting reports at /_gage/report for the
// gaged dispatcher to poll.
//
// Usage:
//
//	rpnsim -listen 127.0.0.1:9001 -node 1 [-delay 1.0]
//
// -delay scales each response's simulated service time (CPU+disk model
// time); 0 serves at memory speed.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"gage/internal/backend"
	"gage/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rpnsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen = flag.String("listen", "127.0.0.1:9001", "address to listen on")
		node   = flag.Int("node", 1, "node ID reported in accounting messages")
		delay  = flag.Float64("delay", 0, "scale simulated service time (1.0 ≈ modeled time)")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := backend.New(backend.Config{
		Node:  core.NodeID(*node),
		Delay: *delay,
	})
	fmt.Printf("rpnsim: node %d serving on %s\n", *node, ln.Addr())
	return srv.Serve(ln)
}
