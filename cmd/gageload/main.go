// Command gageload drives a live Gage cluster with open-loop constant-rate
// load — the Banga-Druschel client model the paper uses — and reports what
// the targeted subscriber actually received.
//
// Usage:
//
//	gageload -addr 127.0.0.1:8080 -host gold.example -path /static/4096.html \
//	         -rate 200 -duration 10s
//
// Run several instances against different hosts to reproduce Table 1 on
// real sockets: the guaranteed sites keep their rates while the overloaded
// one collects 503s.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"gage/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gageload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "dispatcher address")
		host     = flag.String("host", "", "virtual host to request (required)")
		path     = flag.String("path", "/index.html", `request path ("*" for random page sizes)`)
		rate     = flag.Float64("rate", 100, "requests per second")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		seed     = flag.Int64("seed", 1, "random-path seed")
	)
	flag.Parse()
	if *host == "" {
		return fmt.Errorf("-host is required")
	}
	fmt.Printf("offering %.0f req/s to %s (host %s) for %v...\n", *rate, *addr, *host, *duration)
	res, err := loadgen.Run(
		loadgen.Target{Addr: *addr, Host: *host, Path: *path},
		loadgen.Options{Rate: *rate, Duration: *duration, Timeout: *timeout, Seed: *seed},
	)
	if err != nil {
		return err
	}
	fmt.Printf("sent %d (shed %d)\n", res.Sent, res.Shed)
	codes := make([]int, 0, len(res.StatusCounts))
	for code := range res.StatusCounts {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		label := fmt.Sprintf("HTTP %d", code)
		if code == -1 {
			label = "transport error"
		}
		fmt.Printf("  %-16s %6d\n", label, res.StatusCounts[code])
	}
	fmt.Printf("achieved %.1f ok/s; latency mean %v, p95 %v\n",
		res.AchievedOK, res.MeanLatency.Round(time.Microsecond), res.P95Latency.Round(time.Microsecond))
	return nil
}
