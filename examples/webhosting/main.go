// Webhosting: the paper's headline scenario (§1) on the cluster simulator.
//
// A hosting provider multiplexes three customer web sites on one physical
// cluster. Each site buys a distinct GRPS reservation; one site is hit with
// far more load than it paid for. Gage must keep the other two at their
// guaranteed rates, hand the overloaded site exactly the spare capacity,
// and drop the rest — Table 1's behaviour, with knobs you can edit.
//
// Run with:
//
//	go run ./examples/webhosting
package main

import (
	"fmt"
	"os"
	"time"

	"gage/internal/cluster"
	"gage/internal/qos"
	"gage/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webhosting:", err)
		os.Exit(1)
	}
}

func run() error {
	// Three hosting customers. "flashcrowd" pays for 50 GRPS but its site
	// just went viral: clients offer eight times its reservation.
	subs := []qos.Subscriber{
		{ID: "enterprise", Hosts: []string{"www.enterprise.example"}, Reservation: 250, QueueLimit: 128},
		{ID: "midsize", Hosts: []string{"www.midsize.example"}, Reservation: 150, QueueLimit: 128},
		{ID: "flashcrowd", Hosts: []string{"www.flashcrowd.example"}, Reservation: 50, QueueLimit: 128},
	}
	offered := map[qos.SubscriberID]float64{
		"enterprise": 260,
		"midsize":    160,
		"flashcrowd": 400,
	}
	var sources []workload.Source
	for _, s := range subs {
		arr, err := workload.NewConstantRate(offered[s.ID])
		if err != nil {
			return err
		}
		sources = append(sources, workload.Source{
			Subscriber: s.ID,
			Gen:        workload.NewGeneric(s.Hosts[0]),
			Arrivals:   arr,
		})
	}

	// An 8-node cluster with ≈786 GRPS of aggregate capacity — less than
	// the 820 GRPS offered, so something has to give.
	fmt.Println("running 50 seconds of virtual time on an 8-RPN cluster (≈786 GRPS)...")
	res, err := cluster.Run(cluster.Options{
		Subscribers: subs,
		Sources:     sources,
		NumRPNs:     8,
		RPNSpeed:    0.9825,
		Warmup:      10 * time.Second,
		Duration:    40 * time.Second,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\n%-12s %12s %10s %10s %10s %10s %12s\n",
		"site", "reservation", "offered", "served", "dropped", "deviation", "p95 latency")
	for _, row := range res.Rows {
		dev, err := res.Deviation(row.ID, 4*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %12.0f %10.1f %10.1f %10.1f %9.1f%% %12s\n",
			row.ID, float64(row.Reservation), row.Offered, row.Served, row.Dropped, dev*100,
			row.P95Latency.Round(time.Millisecond))
	}
	fmt.Println(`
What to look for:
 - "enterprise" and "midsize" are served at their full offered rates even
   though the cluster as a whole is oversubscribed: performance isolation.
 - "flashcrowd" gets its 50 GRPS guarantee plus ALL the residual capacity
   (≈786 − 260 − 160), and the remainder of its input is dropped.
 - deviation is the served-rate wobble around the reservation at a 4 s
   averaging interval; only the overloaded site pegs to the spare capacity.`)
	return nil
}
