// Quickstart: a complete live Gage cluster on loopback in one process.
//
// It starts two back-end RPN servers and the Gage dispatcher, registers two
// subscribers with different GRPS reservations, pushes a burst of requests
// through real TCP sockets, and prints what each subscriber got.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"gage/internal/backend"
	"gage/internal/core"
	"gage/internal/dispatch"
	"gage/internal/httpwire"
	"gage/internal/qos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Two back-end RPNs on loopback.
	var backends []dispatch.Backend
	for i := 1; i <= 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		be := backend.New(backend.Config{Node: core.NodeID(i)})
		go func() {
			// Serve exits when the listener closes at process end.
			_ = be.Serve(ln)
		}()
		backends = append(backends, dispatch.Backend{ID: core.NodeID(i), Addr: ln.Addr().String()})
		fmt.Printf("backend %d listening on %s\n", i, ln.Addr())
	}

	// 2. The Gage front end: gold reserves 400 GRPS, bronze 100 GRPS.
	srv, err := dispatch.New(dispatch.Config{
		Subscribers: []qos.Subscriber{
			{ID: "gold", Hosts: []string{"gold.example"}, Reservation: 400},
			{ID: "bronze", Hosts: []string{"bronze.example"}, Reservation: 100},
		},
		Backends:  backends,
		AcctCycle: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	addr := ln.Addr().String()
	fmt.Printf("gage dispatcher listening on %s\n\n", addr)

	// 3. A burst of requests for both sites.
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		status = map[string]map[int]int{"gold": {}, "bronze": {}}
	)
	fetch := func(site, host string) {
		defer wg.Done()
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return
		}
		defer conn.Close()
		// Queued requests may wait for a few scheduling cycles.
		_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
		req := &httpwire.Request{Method: "GET", Target: "/static/4096.html", Proto: "HTTP/1.0", Host: host}
		if err := req.Write(conn); err != nil {
			return
		}
		resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
		if err != nil {
			return
		}
		mu.Lock()
		status[site][resp.StatusCode]++
		mu.Unlock()
	}
	const perSite = 40
	for i := 0; i < perSite; i++ {
		wg.Add(2)
		go fetch("gold", "gold.example")
		go fetch("bronze", "bronze.example")
	}
	wg.Wait()

	// 4. Results.
	for _, site := range []string{"gold", "bronze"} {
		fmt.Printf("%-7s:", site)
		for code, n := range status[site] {
			fmt.Printf("  %d×HTTP %d", n, code)
		}
		fmt.Println()
	}
	st := srv.Stats()
	fmt.Printf("\ndispatcher: accepted=%d served=%d rejected=%d errors=%d\n",
		st.Accepted, st.Served, st.Rejected, st.Errors)
	if pred, ok := srv.Scheduler().Predicted("gold"); ok {
		fmt.Printf("scheduler's learned per-request cost for gold: %v\n", pred)
	}
	return srv.Close()
}
