// Splicing: a packet-level walk-through of distributed TCP connection
// splicing (§3.2, Figure 2).
//
// One client fetches a page through a two-RPN spliced cluster on the
// simulated network. Every frame on the wire is printed with its role in
// the Figure-2 message exchange, so you can watch the RDN emulate the
// first-leg handshake, the dispatch decision travel to the chosen RPN's
// local service manager, and the response flow from the RPN straight to the
// client with remapped sequence numbers — never back through the front end.
//
// Run with:
//
//	go run ./examples/splicing
package main

import (
	"fmt"
	"os"
	"time"

	"gage/internal/httpwire"
	"gage/internal/netsim"
	"gage/internal/qos"
	"gage/internal/splice"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "splicing:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := splice.NewSystem(splice.SystemConfig{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 100},
		},
		NumRPNs: 2,
	})
	if err != nil {
		return err
	}

	step := 0
	sys.Net.Tap(func(p netsim.Packet) {
		step++
		role := describe(p)
		fmt.Printf("%2d. t=%-8s %-52s %s\n", step, sys.Engine.Now().Sub(time.Time{}), p, role)
	})

	client, err := sys.NewClient(0)
	if err != nil {
		return err
	}
	var resp *httpwire.Response
	err = client.Get("www.site1.example", "/index.html", func(r *httpwire.Response) { resp = r })
	if err != nil {
		return err
	}
	fmt.Println("client GET http://www.site1.example/index.html through the cluster IP", splice.ClusterIP)
	fmt.Println()
	if err := sys.Engine.RunFor(time.Second); err != nil {
		return err
	}
	if resp == nil {
		return fmt.Errorf("no response received")
	}
	fmt.Printf("\nclient received HTTP %d, %d body bytes\n", resp.StatusCode, len(resp.Body))
	st := sys.LSM(1).Stats()
	st2 := sys.LSM(2).Stats()
	fmt.Printf("LSM remap counters: node1 in=%d out=%d, node2 in=%d out=%d\n",
		st.RemappedIn, st.RemappedOut, st2.RemappedIn, st2.RemappedOut)
	fmt.Println(`
Note how after the DISPATCH control message, response data travels
RPN → client directly (source rewritten to the cluster IP, sequence
numbers shifted into the RDN's first-leg space), while the client's ACKs
go to the cluster IP and are bridged RDN → RPN via the connection table.`)
	return nil
}

// describe names a frame's role in the Figure-2 exchange.
func describe(p netsim.Packet) string {
	switch {
	case p.Flags.Has(netsim.SYN) && !p.Flags.Has(netsim.ACK):
		return "(1) TCP-SYN client → RDN"
	case p.Flags.Has(netsim.SYN | netsim.ACK):
		return "(2) TCP-SYNACK emulated by RDN"
	case p.DstPort == splice.ControlPort:
		return "(5) dispatched request RDN → LSM"
	case len(p.Payload) > 0 && p.DstIP == splice.ClusterIP:
		return "(4) URL request client → RDN"
	case len(p.Payload) > 0 && p.SrcPort == splice.WebPort:
		return "(10) URL response RPN → client (remapped)"
	case p.Flags.Has(netsim.FIN):
		return "FIN teardown"
	case p.Flags.Has(netsim.ACK) && p.DstIP == splice.ClusterIP:
		return "(3/11) TCP-ACK client → cluster IP"
	case p.Flags.Has(netsim.ACK) && p.SrcPort == splice.WebPort:
		return "ACK RPN → client (remapped)"
	case p.Flags.Has(netsim.ACK):
		return "(11) client ACK bridged RDN → RPN"
	default:
		return ""
	}
}
