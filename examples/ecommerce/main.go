// Ecommerce: heterogeneous per-request costs and the accounting feedback
// loop (§3.4–3.5).
//
// An e-commerce subscriber serves a mix of cheap static pages and expensive
// CGI transactions (checkout, search). The RDN cannot know a request's cost
// at dispatch time — it predicts it from accounting feedback. This example
// shows the predictor converging from the generic-request prior to the true
// weighted-average cost, and multi-resource accounting charging CGI children
// to the right subscriber with no extra mechanism.
//
// Run with:
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"os"
	"time"

	"gage/internal/cluster"
	"gage/internal/qos"
	"gage/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecommerce:", err)
		os.Exit(1)
	}
}

func run() error {
	// The shop: 30% of requests are CGI transactions costing 12× the CPU
	// of a static page. The catalog site serves only static pages.
	static := qos.Vector{CPUTime: 2 * time.Millisecond, DiskTime: 2 * time.Millisecond, NetBytes: 4000}
	cgi := qos.Vector{CPUTime: 24 * time.Millisecond, DiskTime: 4 * time.Millisecond, NetBytes: 6000}

	subs := []qos.Subscriber{
		{ID: "shop", Hosts: []string{"shop.example"}, Reservation: 120, QueueLimit: 256},
		{ID: "catalog", Hosts: []string{"catalog.example"}, Reservation: 120, QueueLimit: 256},
	}
	shopArr, err := workload.NewPoisson(55, 1)
	if err != nil {
		return err
	}
	catArr, err := workload.NewPoisson(220, 2)
	if err != nil {
		return err
	}
	sources := []workload.Source{
		{
			Subscriber: "shop",
			Gen:        workload.NewCGIMix("shop.example", 7, 0.3, static, cgi),
			Arrivals:   shopArr,
		},
		{
			Subscriber: "catalog",
			Gen:        workload.NewFixed("catalog.example", "/catalog/page.html", static),
			Arrivals:   catArr,
		},
	}

	fmt.Println("running 40 seconds of virtual time on a 2-RPN cluster...")
	res, err := cluster.Run(cluster.Options{
		Subscribers:  subs,
		Sources:      sources,
		NumRPNs:      2,
		UnitResource: qos.CPU, // CPU-bound mix: report GRPS in CPU units
		Warmup:       5 * time.Second,
		Duration:     35 * time.Second,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\n%-9s %12s %10s %10s %10s\n", "site", "reservation", "offered", "served", "dropped")
	for _, row := range res.Rows {
		fmt.Printf("%-9s %12.0f %10.1f %10.1f %10.1f\n",
			row.ID, float64(row.Reservation), row.Offered, row.Served, row.Dropped)
	}

	// The per-request cost the shop's requests *actually* average:
	mean := static.Scale(0.7).Add(cgi.Scale(0.3))
	fmt.Printf(`
What to look for:
 - Both sites reserve 120 GRPS (CPU units). The shop's requests average
   %v each (30%% CGI at %v), so its 55 req/s
   offered load is ≈52 GRPS of CPU — comfortably inside its guarantee.
 - The catalog offers 220 req/s of cheap static pages (≈44 GRPS CPU).
 - Neither site can state costs up front: the RDN learns them from the
   RPNs' per-process accounting reports (CGI children included) and keeps
   both sites' multi-resource balances straight.
`, mean, cgi.CPUTime)
	return nil
}
