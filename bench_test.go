// Package gage's root benchmark suite regenerates every table and figure of
// the paper's evaluation (§4). Each benchmark attaches the experiment's
// headline numbers as custom metrics, so `go test -bench . -benchmem`
// doubles as the reproduction record (see EXPERIMENTS.md).
package gage_test

import (
	"testing"
	"time"

	"gage/internal/benchkit"
	"gage/internal/cluster"
	"gage/internal/core"
	"gage/internal/netsim"
	"gage/internal/qos"
	"gage/internal/splice"
)

// BenchmarkTable1 regenerates Table 1: QoS guarantee under excessive input
// loads. Metrics: served GRPS per site and site3's drop rate.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := cluster.Table1()
		if err != nil {
			b.Fatal(err)
		}
		s1, _ := res.Row("site1")
		s2, _ := res.Row("site2")
		s3, _ := res.Row("site3")
		b.ReportMetric(s1.Served, "site1-grps")
		b.ReportMetric(s2.Served, "site2-grps")
		b.ReportMetric(s3.Served, "site3-grps")
		b.ReportMetric(s3.Dropped, "site3-dropped")
	}
}

// BenchmarkTable2 regenerates Table 2: spare resource allocation. Metric:
// the ratio of the two sites' spare shares (paper: ≈ 250/200 = 1.25).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := cluster.Table2()
		if err != nil {
			b.Fatal(err)
		}
		s1, _ := res.Row("site1")
		s2, _ := res.Row("site2")
		b.ReportMetric(s1.Served, "site1-grps")
		b.ReportMetric(s2.Served, "site2-grps")
		b.ReportMetric((s1.Served-250)/(s2.Served-200), "spare-ratio")
	}
}

// BenchmarkFigure3 regenerates Figure 3's sweep over accounting cycles.
// Metrics: deviation (%) at the 1 s averaging interval per cycle, including
// the paper's headline ≥100 % point at the 2 s cycle.
func BenchmarkFigure3(b *testing.B) {
	cycles := cluster.Figure3Cycles()
	intervals := []time.Duration{time.Second, 4 * time.Second}
	for i := 0; i < b.N; i++ {
		pts, err := cluster.Figure3(cycles, intervals, false)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Interval == time.Second {
				b.ReportMetric(p.Deviation*100, "dev%@1s/"+p.AcctCycle.String())
			}
		}
	}
}

// BenchmarkFigure3Realistic regenerates Figure 3's SPECweb99-like variant.
// Metric: deviation (%) at a 4 s interval with a 100 ms cycle (paper: <5 %).
func BenchmarkFigure3Realistic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := cluster.Figure3(
			[]time.Duration{100 * time.Millisecond},
			[]time.Duration{4 * time.Second}, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].Deviation*100, "dev%@4s")
	}
}

// BenchmarkTable3ConnectionSetupRDN measures the RDN's first-leg handshake
// emulation (paper: 29.3 µs on a PIII-450).
func BenchmarkTable3ConnectionSetupRDN(b *testing.B) {
	sc, err := benchkit.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.RDN.Receive(sc.SYNPacket(i))
		if i%4096 == 4095 {
			b.StopTimer()
			sc.DrainIfNeeded()
			b.StartTimer()
		}
	}
}

// BenchmarkTable3ConnectionSetupRPN measures the LSM's second-leg setup:
// control-message handling plus the synthesized local handshake and URL
// injection (paper: 27.2 µs).
func BenchmarkTable3ConnectionSetupRPN(b *testing.B) {
	sc, err := benchkit.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	sc.Mute = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pending, err := sc.Establish(i)
		if err != nil {
			b.Fatal(err)
		}
		if err := sc.Engine.Drain(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := sc.RDN.Dispatch(pending, 100); err != nil {
			b.Fatal(err)
		}
		for sc.Engine.Len() > 0 {
			sc.Engine.Step()
		}
	}
}

// BenchmarkTable3Classification measures URL-packet classification: HTTP
// head parse plus host→subscriber lookup (paper: 3.0 µs).
func BenchmarkTable3Classification(b *testing.B) {
	sc, err := benchkit.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.ClassifyOnce(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Forwarding measures bridging one post-dispatch client
// packet through the connection table (paper: 7.0 µs).
func BenchmarkTable3Forwarding(b *testing.B) {
	sc, err := benchkit.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	pkt, err := sc.PrepareForwarding()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.RDN.Receive(pkt)
		if i%4096 == 4095 {
			b.StopTimer()
			sc.DrainIfNeeded()
			b.StartTimer()
		}
	}
}

// BenchmarkTable3RemapIncoming measures the per-packet inbound rewrite
// (paper: 1.3 µs).
func BenchmarkTable3RemapIncoming(b *testing.B) {
	pkt := netsim.Packet{DstIP: netsim.IPAddr{10, 0, 0, 1}, Flags: netsim.ACK, Ack: 100}
	rpnIP := netsim.IPAddr{10, 0, 1, 1}
	for i := 0; i < b.N; i++ {
		splice.RemapInbound(&pkt, rpnIP, 12345)
		benchkit.Sink += pkt.Ack
	}
}

// BenchmarkTable3RemapOutgoing measures the per-packet outbound rewrite
// (paper: 4.6 µs).
func BenchmarkTable3RemapOutgoing(b *testing.B) {
	pkt := netsim.Packet{SrcIP: netsim.IPAddr{10, 0, 1, 1}, Seq: 100}
	clusterIP := netsim.IPAddr{10, 0, 0, 1}
	for i := 0; i < b.N; i++ {
		splice.RemapOutbound(&pkt, clusterIP, 100, 1000, 12345)
		benchkit.Sink += pkt.Seq
	}
}

// BenchmarkOverheadPerRequest measures §4.2's per-request QoS overhead on
// an RPN — one second-leg setup plus five data-ACK packet pairs through the
// remapper (paper: 56.7 µs, i.e. ≤3.06 % of one RPN's CPU at 540 req/s).
func BenchmarkOverheadPerRequest(b *testing.B) {
	sc, err := benchkit.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	sc.Mute = true
	inPkt := netsim.Packet{DstIP: netsim.IPAddr{10, 0, 0, 1}, Flags: netsim.ACK, Ack: 100}
	outPkt := netsim.Packet{SrcIP: netsim.IPAddr{10, 0, 1, 1}, Seq: 100}
	rpnIP := netsim.IPAddr{10, 0, 1, 1}
	clusterIP := netsim.IPAddr{10, 0, 0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pending, err := sc.Establish(i)
		if err != nil {
			b.Fatal(err)
		}
		if err := sc.Engine.Drain(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := sc.RDN.Dispatch(pending, 100); err != nil {
			b.Fatal(err)
		}
		for sc.Engine.Len() > 0 {
			sc.Engine.Step()
		}
		for p := 0; p < 5; p++ {
			splice.RemapInbound(&inPkt, rpnIP, 12345)
			benchkit.Sink += inPkt.Ack
			splice.RemapOutbound(&outPkt, clusterIP, 100, 1000, 12345)
			benchkit.Sink += outPkt.Seq
		}
	}
}

// BenchmarkScalability regenerates §4.3's throughput study. Metrics:
// requests/sec with Gage at 8 RPNs and the QoS penalty vs no-Gage (paper:
// 4800 req/s, ≈1.8 % penalty).
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := cluster.Scalability(8)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.WithGage, "req/s@8rpn")
		b.ReportMetric((1-last.WithGage/last.WithoutGage)*100, "penalty%")
		b.ReportMetric(last.WithGage/pts[0].WithGage, "speedup@8rpn")
	}
}

// BenchmarkRDNUtilization regenerates §4.3's front-end saturation curve.
// Metrics: RDN CPU utilization at 4000 and 4800 req/s (paper: near-linear
// to ≈4400, exponential to saturation at ≈4800).
func BenchmarkRDNUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := cluster.RDNUtilizationCurve([]float64{4000, 4800})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].RDNUtilization*100, "util%@4000")
		b.ReportMetric(pts[1].RDNUtilization*100, "util%@4800")
	}
}

// BenchmarkSchedulerTick measures one scheduling cycle of the core
// scheduler with 100 subscribers and 8 nodes under steady load — the
// operation the RDN performs every 10 ms.
func BenchmarkSchedulerTick(b *testing.B) {
	subs := make([]qos.Subscriber, 100)
	for i := range subs {
		subs[i] = qos.Subscriber{
			ID:          qos.SubscriberID(string(rune('a'+i/26)) + string(rune('a'+i%26))),
			Reservation: 10,
		}
	}
	dir, err := qos.NewDirectory(subs)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]core.NodeConfig, 8)
	for i := range nodes {
		nodes[i] = core.NodeConfig{
			ID:       core.NodeID(i + 1),
			Capacity: qos.Vector{CPUTime: time.Second, DiskTime: time.Second, NetBytes: 12_500_000},
		}
	}
	sched, err := core.New(dir, nodes, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var id uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 10; j++ {
			id++
			// Steady trickle across subscribers; drops are irrelevant here.
			_ = sched.Enqueue(core.Request{ID: id, Subscriber: subs[int(id)%len(subs)].ID})
		}
		b.StartTimer()
		dispatches := sched.Tick()
		b.StopTimer()
		// Complete everything so queues do not grow unboundedly.
		reps := make(map[core.NodeID]*core.UsageReport)
		for _, d := range dispatches {
			rep, ok := reps[d.Node]
			if !ok {
				rep = &core.UsageReport{Node: d.Node, BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{}}
				reps[d.Node] = rep
			}
			u := rep.BySubscriber[d.Req.Subscriber]
			u.Usage = u.Usage.Add(qos.GenericCost())
			u.Completed++
			rep.BySubscriber[d.Req.Subscriber] = u
			rep.Total = rep.Total.Add(qos.GenericCost())
		}
		for _, rep := range reps {
			if err := sched.ReportUsage(*rep); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
}

// BenchmarkEnqueue measures admission into a subscriber queue.
func BenchmarkEnqueue(b *testing.B) {
	dir, err := qos.NewDirectory([]qos.Subscriber{
		{ID: "a", Reservation: 100, QueueLimit: 1 << 30},
	})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := core.New(dir,
		[]core.NodeConfig{{ID: 1, Capacity: qos.Vector{CPUTime: time.Second, DiskTime: time.Second, NetBytes: 1 << 30}}},
		core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sched.Enqueue(core.Request{ID: uint64(i), Subscriber: "a"}); err != nil {
			b.Fatal(err)
		}
	}
}
